//! The cluster harness: spawns rank threads, injects failures,
//! respawns incarnations, runs the TEL event-logger service, and
//! collects results — the reproduction's equivalent of the paper's
//! testbed scripts.

use crate::config::RunConfig;
use crate::engine::Engine;
use crate::events::{Event, EventKind, EventSink};
use crate::fault::{Fault, StepStatus};
use crate::kernel::Kernel;
use crate::process::{RankApp, RankCtx};
use crate::service::spawn_event_logger;
use lclog_core::{Rank, TrackingStats};
use lclog_simnet::{NetConfig, SimNet};
use lclog_stable::{CheckpointStore, DiskStore, MemStore, StableStorage};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One planned failure: the given incarnation of `rank` crashes when
/// its step counter reaches `at_step`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kill {
    /// Victim rank.
    pub rank: Rank,
    /// Crash before executing this step.
    pub at_step: u64,
    /// Which incarnation to kill (1 = the original process; higher
    /// values test repeated failures).
    pub incarnation: u64,
}

/// Deterministic failure-injection schedule.
#[derive(Debug, Clone, Default)]
pub struct FailurePlan {
    kills: Vec<Kill>,
}

impl FailurePlan {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Kill the original incarnation of `rank` at `at_step`.
    pub fn kill_at(rank: Rank, at_step: u64) -> Self {
        Self::none().and_kill(rank, at_step)
    }

    /// Add another first-incarnation kill (multi-failure scenarios).
    pub fn and_kill(mut self, rank: Rank, at_step: u64) -> Self {
        self.kills.push(Kill {
            rank,
            at_step,
            incarnation: 1,
        });
        self
    }

    /// Add a kill of a specific incarnation (repeated-failure tests).
    pub fn and_kill_incarnation(mut self, rank: Rank, at_step: u64, incarnation: u64) -> Self {
        self.kills.push(Kill {
            rank,
            at_step,
            incarnation,
        });
        self
    }

    /// Number of planned kills.
    pub fn len(&self) -> usize {
        self.kills.len()
    }

    /// True when no kills are planned.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty()
    }

    fn should_kill(&self, rank: Rank, incarnation: u64, step: u64) -> bool {
        self.kills
            .iter()
            .any(|k| k.rank == rank && k.incarnation == incarnation && step >= k.at_step)
    }
}

/// Where checkpoints and the TEL/PES event log live.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum StorageKind {
    /// In-process store (default): crash survival is modelled by the
    /// runtime never reading volatile state back after a kill.
    #[default]
    Memory,
    /// Real files under the given directory — durable across OS
    /// processes, for demos and paranoia.
    Disk(PathBuf),
}

/// Full configuration of one cluster run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of application ranks.
    pub n: usize,
    /// Runtime (protocol / engine / checkpoint) configuration.
    pub run: RunConfig,
    /// Fabric configuration.
    pub net: NetConfig,
    /// Failure injection schedule.
    pub failures: FailurePlan,
    /// Stable-storage backend.
    pub storage: StorageKind,
    /// Collect a structured fault-tolerance timeline into
    /// [`RunReport::timeline`].
    pub trace: bool,
    /// Abort the run (with an error) after this much wall time — a
    /// watchdog against protocol deadlocks.
    pub max_wall: Duration,
}

impl ClusterConfig {
    /// Defaults: direct fabric, no failures, 60 s watchdog.
    pub fn new(n: usize, run: RunConfig) -> Self {
        ClusterConfig {
            n,
            run,
            net: NetConfig::direct(),
            failures: FailurePlan::none(),
            storage: StorageKind::Memory,
            trace: false,
            max_wall: Duration::from_secs(60),
        }
    }

    /// Builder-style fabric override.
    pub fn with_net(mut self, net: NetConfig) -> Self {
        self.net = net;
        self
    }

    /// Builder-style failure plan override.
    pub fn with_failures(mut self, failures: FailurePlan) -> Self {
        self.failures = failures;
        self
    }

    /// Builder-style stable-storage override.
    pub fn with_storage(mut self, storage: StorageKind) -> Self {
        self.storage = storage;
        self
    }

    /// Builder-style timeline collection toggle.
    pub fn with_trace(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

/// What a completed cluster run reports.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-rank application digests (recovery correctness: equal to a
    /// fault-free run's digests).
    pub digests: Vec<u64>,
    /// Per-rank tracking statistics, merged across incarnations.
    pub per_rank_stats: Vec<TrackingStats>,
    /// Cluster-wide sum of `per_rank_stats`.
    pub stats: TrackingStats,
    /// Wall-clock duration of the run (Fig. 8's accomplishment time).
    pub wall: Duration,
    /// Number of injected crashes that actually fired.
    pub kills: u32,
    /// Fabric envelope count (app + control + recovery traffic).
    pub net_msgs: u64,
    /// Fabric payload bytes.
    pub net_bytes: u64,
    /// Structured fault-tolerance timeline (empty unless
    /// [`ClusterConfig::trace`] was set).
    pub timeline: Vec<Event>,
}

enum Outcome {
    Done {
        rank: Rank,
        digest: u64,
        stats: TrackingStats,
    },
    Killed {
        rank: Rank,
        stats: TrackingStats,
    },
}

/// Entry point for running applications under rollback recovery.
pub struct Cluster;

impl Cluster {
    /// Run `app` on `cfg.n` ranks to completion, injecting the
    /// configured failures. Returns an error string if the watchdog
    /// fires.
    pub fn run<A: RankApp>(cfg: &ClusterConfig, app: A) -> Result<RunReport, String> {
        let n = cfg.n;
        assert!(n > 0, "cluster needs at least one rank");
        let net = SimNet::new(n + 1, cfg.net.clone());
        let storage: Arc<dyn StableStorage> = match &cfg.storage {
            StorageKind::Memory => Arc::new(MemStore::new()),
            StorageKind::Disk(dir) => Arc::new(
                DiskStore::open(dir).map_err(|e| format!("open disk store: {e}"))?,
            ),
        };
        let ckpts = CheckpointStore::new(Arc::clone(&storage));
        let shutdown = Arc::new(AtomicBool::new(false));
        let sink = if cfg.trace {
            EventSink::recording()
        } else {
            EventSink::disabled()
        };
        let app = Arc::new(app);
        let plan = Arc::new(cfg.failures.clone());
        let (tx, rx) = crossbeam::channel::unbounded::<Outcome>();

        let mut handles: Vec<JoinHandle<()>> = Vec::new();
        if cfg.run.protocol.uses_event_logger() {
            handles.push(spawn_event_logger(
                net.clone(),
                net.attach(crate::logger_rank(n)),
                Arc::clone(&storage),
                Arc::clone(&shutdown),
            ));
        }
        // Attach every endpoint *before* spawning any rank thread: a
        // send to a not-yet-attached slot would be dropped as if the
        // destination were dead.
        let endpoints: Vec<_> = (0..n).map(|rank| net.attach(rank)).collect();
        for (rank, endpoint) in endpoints.into_iter().enumerate() {
            handles.push(spawn_rank(
                Arc::clone(&app),
                rank,
                n,
                cfg.run.clone(),
                net.clone(),
                endpoint,
                ckpts.clone(),
                Arc::clone(&plan),
                1,
                Arc::clone(&shutdown),
                sink.clone(),
                tx.clone(),
            ));
        }

        let start = Instant::now();
        let mut digests: Vec<Option<u64>> = vec![None; n];
        let mut per_rank_stats = vec![TrackingStats::default(); n];
        let mut incarnations = vec![1u64; n];
        let mut kills = 0u32;

        while digests.iter().any(Option::is_none) {
            match rx.recv_timeout(Duration::from_millis(50)) {
                Ok(Outcome::Done {
                    rank,
                    digest,
                    stats,
                }) => {
                    digests[rank] = Some(digest);
                    per_rank_stats[rank].merge(&stats);
                }
                Ok(Outcome::Killed { rank, stats }) => {
                    kills += 1;
                    per_rank_stats[rank].merge(&stats);
                    incarnations[rank] += 1;
                    let endpoint = net.respawn(rank);
                    handles.push(spawn_rank(
                        Arc::clone(&app),
                        rank,
                        n,
                        cfg.run.clone(),
                        net.clone(),
                        endpoint,
                        ckpts.clone(),
                        Arc::clone(&plan),
                        incarnations[rank],
                        Arc::clone(&shutdown),
                        sink.clone(),
                        tx.clone(),
                    ));
                }
                Err(_) => {
                    if start.elapsed() > cfg.max_wall {
                        shutdown.store(true, Ordering::Relaxed);
                        for h in handles {
                            let _ = h.join();
                        }
                        return Err(format!(
                            "cluster watchdog fired after {:?} (protocol {}, {} ranks)",
                            cfg.max_wall, cfg.run.protocol, n
                        ));
                    }
                }
            }
        }
        let wall = start.elapsed();
        shutdown.store(true, Ordering::Relaxed);
        for h in handles {
            let _ = h.join();
        }
        let mut stats = TrackingStats::default();
        for s in &per_rank_stats {
            stats.merge(s);
        }
        Ok(RunReport {
            digests: digests.into_iter().map(Option::unwrap).collect(),
            per_rank_stats,
            stats,
            wall,
            kills,
            net_msgs: net.stats().msgs_sent(),
            net_bytes: net.stats().bytes_sent(),
            timeline: sink.take(),
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_rank<A: RankApp>(
    app: Arc<A>,
    rank: Rank,
    n: usize,
    run: RunConfig,
    net: SimNet,
    endpoint: lclog_simnet::Endpoint,
    ckpts: CheckpointStore,
    plan: Arc<FailurePlan>,
    incarnation: u64,
    shutdown: Arc<AtomicBool>,
    sink: EventSink,
    tx: crossbeam::channel::Sender<Outcome>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("lclog-rank-{rank}.{incarnation}"))
        .spawn(move || {
            rank_main(
                app,
                rank,
                n,
                run,
                net,
                endpoint,
                ckpts,
                plan,
                incarnation,
                shutdown,
                sink,
                tx,
            )
        })
        .expect("spawn rank thread")
}

#[allow(clippy::too_many_arguments)]
fn rank_main<A: RankApp>(
    app: Arc<A>,
    rank: Rank,
    n: usize,
    run: RunConfig,
    net: SimNet,
    endpoint: lclog_simnet::Endpoint,
    ckpts: CheckpointStore,
    plan: Arc<FailurePlan>,
    incarnation: u64,
    shutdown: Arc<AtomicBool>,
    sink: EventSink,
    tx: crossbeam::channel::Sender<Outcome>,
) {
    let mut kernel = Kernel::new(rank, n, run, net, ckpts);
    kernel.set_event_sink(sink.clone());
    sink.emit(rank, EventKind::Spawned { incarnation });
    let (mut step, mut state) = if incarnation == 1 {
        (0u64, app.init(rank, n))
    } else {
        // Incarnation: restore the last checkpoint (or the initial
        // state if the process died before ever checkpointing), then
        // announce the rollback (Algorithm 1 lines 40–46).
        let restored = match kernel.load_checkpoint() {
            Some(image) => {
                let (step, app_bytes) = kernel.restore(image);
                let state = lclog_wire::decode_from_slice(&app_bytes)
                    .expect("checkpointed app state decodes");
                (step, state)
            }
            None => (0u64, app.init(rank, n)),
        };
        kernel.begin_recovery();
        restored
    };

    let mut engine = Engine::new(kernel, endpoint, Arc::clone(&shutdown));
    loop {
        if plan.should_kill(rank, incarnation, step) {
            sink.emit(rank, EventKind::Crashed { step });
            engine.crash();
            let _ = tx.send(Outcome::Killed {
                rank,
                stats: engine.stats(),
            });
            return;
        }
        let mut ctx = RankCtx::new(&engine, step);
        match app.step(&mut ctx, &mut state) {
            Ok(StepStatus::Continue) => {
                step += 1;
                engine.maybe_checkpoint(|| lclog_wire::encode_to_vec(&state), step);
            }
            Ok(StepStatus::Done) => {
                sink.emit(rank, EventKind::Done { step });
                // A final checkpoint lets every peer release the last
                // log entries referring to us.
                engine.checkpoint_now(lclog_wire::encode_to_vec(&state), step);
                let _ = tx.send(Outcome::Done {
                    rank,
                    digest: app.digest(&state),
                    stats: engine.stats(),
                });
                // Stay responsive: peers may still fail and need our
                // logged messages resent.
                engine.serve_until_shutdown();
                return;
            }
            Err(Fault::Killed) => {
                engine.crash();
                let _ = tx.send(Outcome::Killed {
                    rank,
                    stats: engine.stats(),
                });
                return;
            }
            Err(Fault::Shutdown) => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_plan_matching() {
        let plan = FailurePlan::kill_at(2, 10).and_kill_incarnation(2, 5, 2);
        assert!(plan.should_kill(2, 1, 10));
        assert!(plan.should_kill(2, 1, 11));
        assert!(!plan.should_kill(2, 1, 9));
        assert!(!plan.should_kill(1, 1, 10));
        assert!(plan.should_kill(2, 2, 5));
        assert!(!plan.should_kill(2, 3, 99));
        assert_eq!(plan.len(), 2);
        assert!(!plan.is_empty());
        assert!(FailurePlan::none().is_empty());
    }
}
