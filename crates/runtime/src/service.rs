//! The TEL event-logger service (\[5\] in the paper): a stable node
//! that durably stores determinants and acknowledges them, ending
//! their causal piggybacking.
//!
//! The service occupies fabric slot `n` (see [`crate::logger_rank`])
//! and is assumed never to fail — the same assumption the baseline
//! protocol itself makes about its stable storage. It still speaks the
//! reliability layer: its replies are sequenced, CRC-framed, and
//! retransmitted, so a chaos fabric cannot silently eat a `LOG_ACK`
//! and wedge a pessimistic sender.
//!
//! When failures are *detected* rather than announced, the same stable
//! slot doubles as the **membership arbiter**: it turns `Suspect`
//! reports into at-most-once death declarations (see
//! [`crate::detector::MembershipTable`]) and broadcasts the certified
//! `(epoch, floor[])` view to every rank, which fences the declared
//! incarnation at their transports.

use crate::backoff::Backoff;
use crate::clock::Clock;
use crate::detector::MembershipTable;
use crate::events::{EventKind, EventSink};
use crate::message::WireMsg;
use crate::transport::{Transport, TransportConfig};
use lclog_core::{Determinant, Rank};
use lclog_simnet::{Endpoint, RecvError, SimNet};
use lclog_stable::StableStorage;
use lclog_wire::encode_to_vec;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Spawn the event-logger thread. It answers:
///
/// * [`WireMsg::LogDets`] — append the submitter's determinants to
///   stable storage and reply [`WireMsg::LogAck`] with the highest
///   contiguously stored deliver index;
/// * [`WireMsg::LogQuery`] — return every stored determinant of the
///   queried (failed) rank as [`WireMsg::LogQueryResp`];
/// * [`WireMsg::Suspect`] — when `membership` is present, declare the
///   suspected incarnation dead (at most once) and broadcast the new
///   certified view; a stale suspicion is answered with the current
///   view so the suspecter can catch up instead of killing a
///   successor incarnation.
pub fn spawn_event_logger(
    net: SimNet,
    endpoint: Endpoint,
    storage: Arc<dyn StableStorage>,
    shutdown: Arc<AtomicBool>,
    sink: EventSink,
    membership: Option<Arc<MembershipTable>>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("lclog-event-logger".into())
        .spawn(move || {
            let me = endpoint.rank();
            let mut transport = Transport::new(
                me,
                net.n(),
                net.clone(),
                TransportConfig {
                    timeout: Duration::from_millis(2),
                    cap: Duration::from_millis(50),
                    budget: 40,
                    clock: Clock::Real,
                },
            );
            transport.set_event_sink(sink.clone());
            // In-memory mirror of stable storage for fast queries; the
            // stable copy is authoritative and written first.
            let mut dets: HashMap<Rank, Vec<Determinant>> = HashMap::new();
            let mut acked: HashMap<Rank, u64> = HashMap::new();
            let mut backoff = Backoff::new(Duration::from_micros(100), Duration::from_millis(5));
            loop {
                if shutdown.load(Ordering::Relaxed) {
                    return;
                }
                let env = match endpoint.recv_timeout(backoff.next_wait()) {
                    Ok(env) => env,
                    Err(RecvError::Timeout) => {
                        transport.tick();
                        continue;
                    }
                    Err(_) => return,
                };
                let src = env.src;
                let inner = transport.ingest(env);
                // Inbound data frames mark their channel ack-pending;
                // the service is single-threaded and cold, so flush
                // the coalesced ack right away.
                transport.flush_acks();
                let Some(inner) = inner else {
                    continue;
                };
                backoff.reset();
                let msg: WireMsg = match lclog_wire::decode_from_bytes(&inner) {
                    Ok(m) => m,
                    Err(_) => continue,
                };
                match msg {
                    WireMsg::LogDets(batch) => {
                        let key = format!("eventlog/{src}");
                        let count = batch.len();
                        let upto = acked.entry(src).or_insert(0);
                        for det in batch {
                            debug_assert_eq!(det.receiver as Rank, src);
                            // Stable first, then the mirror.
                            storage.append(&key, &encode_to_vec(&det));
                            dets.entry(src).or_default().push(det);
                            if det.deliver_index > *upto {
                                *upto = det.deliver_index;
                            }
                        }
                        let ack = WireMsg::LogAck(*upto);
                        sink.emit(
                            me,
                            EventKind::LoggerStored {
                                from: src,
                                count,
                                upto: *upto,
                            },
                        );
                        transport.send_msg(src, &ack);
                    }
                    WireMsg::LogQuery(failed) => {
                        let found = dets
                            .get(&(failed as Rank))
                            .cloned()
                            .unwrap_or_default();
                        sink.emit(
                            me,
                            EventKind::LoggerQueried {
                                failed: failed as Rank,
                                count: found.len(),
                            },
                        );
                        let resp = WireMsg::LogQueryResp(found);
                        transport.send_msg(src, &resp);
                    }
                    WireMsg::Suspect(s) => {
                        let Some(table) = &membership else {
                            continue; // announced-failures run: ignore
                        };
                        let suspect = s.rank as Rank;
                        match table.declare(suspect, s.incarnation) {
                            Some(view) => {
                                sink.emit(
                                    me,
                                    EventKind::MembershipBumped {
                                        epoch: view.epoch,
                                        dead: suspect,
                                        incarnation: s.incarnation,
                                    },
                                );
                                // Certified view to every application
                                // rank — including the victim, whose
                                // transport will self-fence if it is
                                // in fact still alive.
                                let msg = WireMsg::Membership(view);
                                for k in 0..me {
                                    transport.send_msg(k, &msg);
                                }
                            }
                            None => {
                                // Stale: that incarnation is already
                                // below the floor. Re-send the current
                                // view so the suspecter fences it too.
                                transport.send_msg(src, &WireMsg::Membership(table.view()));
                            }
                        }
                    }
                    _ => {}
                }
            }
        })
        .expect("spawn event logger")
}
