//! Decentralized failure detection and membership epochs.
//!
//! The paper's recovery protocol assumes failures are *announced*; in
//! a deployment they must be *detected*. This module supplies the
//! three pieces that turn silence into a safe, certified death
//! verdict:
//!
//! * [`Detector`] — a per-rank **accrual failure detector** in the
//!   φ-accrual family (Hayashibara et al.): every intact frame from a
//!   peer (data, ack, nack, or an explicit idle [`Frame::Heartbeat`])
//!   feeds a windowed estimate of that link's inter-arrival process,
//!   and the current silence is scored as
//!   `φ = elapsed / (m_eff · ln 10)` where `m_eff = mean + 2σ` of the
//!   window, floored at the heartbeat interval. φ is the negative
//!   decimal log of the probability that a live peer stays silent this
//!   long under an exponential tail — φ = 8 means "one in 10⁸". A
//!   threshold crossing *latches* a suspicion (cleared by any later
//!   sign of life) so one silence episode produces one report.
//! * [`MembershipTable`] — the arbiter state, hosted by the stable
//!   service slot (the same fabric slot as the TEL event logger, which
//!   the paper already assumes never fails). A suspicion names the
//!   *believed incarnation*; the arbiter declares it dead at most
//!   once, bumps the membership epoch, and the service broadcasts the
//!   certified `(epoch, floor[])` view to every rank. Stale
//!   suspicions — about an incarnation already below the floor — are
//!   answered with the current view instead of a new declaration, so
//!   a slow suspicion can never kill the successor incarnation.
//! * **Fencing** happens in the transport: receivers that applied a
//!   view reject frames from below-floor incarnations and notify the
//!   zombie (see `Transport::apply_fence_floors`), which rejoins
//!   through the ordinary rollback path.
//!
//! [`Frame::Heartbeat`]: crate::transport::Frame::Heartbeat

use lclog_core::{MembershipView, Rank};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Tuning for the accrual failure detector (attach to
/// [`RunConfig::with_detector`]).
///
/// [`RunConfig::with_detector`]: crate::RunConfig::with_detector
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Idle liveness beacon period: when a rank has sent a peer
    /// nothing for this long, the kernel tick emits an explicit
    /// heartbeat. Also the floor of the inter-arrival estimate, so
    /// bursty application traffic cannot make the detector trigger-
    /// happy during a lull.
    pub heartbeat_interval: Duration,
    /// Suspicion threshold φ: report a peer once the silence is this
    /// many decimal orders of magnitude less likely than the observed
    /// inter-arrival process explains. 8.0 rides out the chaos
    /// fabric's heavy-tailed delays (see EXPERIMENTS.md).
    pub phi_threshold: f64,
    /// Inter-arrival samples kept per peer.
    pub window: usize,
    /// Startup grace: a peer never heard from is not suspected until
    /// this much time has passed since the detector started.
    pub grace: Duration,
    /// Respawn gate fallback: a replacement incarnation waits at most
    /// this long for the membership floor to pass its predecessor
    /// before starting anyway (liveness when no survivor can detect).
    pub gate_timeout: Duration,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            heartbeat_interval: Duration::from_millis(2),
            phi_threshold: 8.0,
            window: 32,
            grace: Duration::from_millis(100),
            gate_timeout: Duration::from_secs(1),
        }
    }
}

impl DetectorConfig {
    /// Sets the suspicion threshold φ.
    pub fn with_threshold(mut self, phi: f64) -> Self {
        assert!(phi > 0.0, "phi threshold must be positive");
        self.phi_threshold = phi;
        self
    }

    /// Sets the idle heartbeat period (and the inter-arrival floor).
    pub fn with_heartbeat_interval(mut self, interval: Duration) -> Self {
        assert!(!interval.is_zero(), "heartbeat interval must be non-zero");
        self.heartbeat_interval = interval;
        self
    }

    /// Sets the startup grace period.
    pub fn with_grace(mut self, grace: Duration) -> Self {
        self.grace = grace;
        self
    }

    /// Sets the respawn-gate fallback timeout.
    pub fn with_gate_timeout(mut self, timeout: Duration) -> Self {
        self.gate_timeout = timeout;
        self
    }
}

/// Per-peer accrual state.
struct Peer {
    /// Last intact frame seen (None = never).
    last_heard: Option<Instant>,
    /// Windowed inter-arrival samples, seconds.
    intervals: VecDeque<f64>,
    /// Suspicion latch: set at a threshold crossing (or forced by
    /// retransmit-budget exhaustion), cleared by any sign of life or a
    /// membership declaration.
    suspected: bool,
}

/// The φ-accrual failure detector for one rank, monitoring its `n`
/// application peers. Lives inside the reliability layer (leaf lock);
/// driven by `Kernel::tick`.
pub(crate) struct Detector {
    cfg: DetectorConfig,
    me: Rank,
    peers: Vec<Peer>,
    started: Instant,
    last_beacon: Instant,
}

impl Detector {
    /// A detector for rank `me` of an `n`-rank application. The
    /// service slot (`n`) is never monitored: it is the paper's
    /// assumed-stable logger host.
    pub(crate) fn new(me: Rank, n: usize, cfg: DetectorConfig, now: Instant) -> Self {
        Detector {
            cfg,
            me,
            peers: (0..n)
                .map(|_| Peer {
                    last_heard: None,
                    intervals: VecDeque::new(),
                    suspected: false,
                })
                .collect(),
            started: now,
            last_beacon: now,
        }
    }

    /// Record an intact frame from `rank` at `now`.
    pub(crate) fn heard(&mut self, rank: Rank, now: Instant) {
        let Some(peer) = self.peers.get_mut(rank) else {
            return; // service slot or out of range: unmonitored
        };
        if let Some(last) = peer.last_heard {
            let dt = now.saturating_duration_since(last).as_secs_f64();
            if peer.intervals.len() == self.cfg.window {
                peer.intervals.pop_front();
            }
            peer.intervals.push_back(dt);
        }
        peer.last_heard = Some(now);
        peer.suspected = false;
    }

    /// True once per heartbeat period: the caller should beacon every
    /// peer it has no outstanding traffic towards.
    pub(crate) fn heartbeat_due(&mut self, now: Instant) -> bool {
        if now.saturating_duration_since(self.last_beacon) >= self.cfg.heartbeat_interval {
            self.last_beacon = now;
            true
        } else {
            false
        }
    }

    /// The current accrued suspicion for `rank`: decimal orders of
    /// magnitude of improbability of the ongoing silence.
    pub(crate) fn phi(&self, rank: Rank, now: Instant) -> f64 {
        let peer = &self.peers[rank];
        let since = peer.last_heard.unwrap_or(self.started);
        let elapsed = now.saturating_duration_since(since).as_secs_f64();
        let floor = self.cfg.heartbeat_interval.as_secs_f64();
        let m_eff = if peer.intervals.is_empty() {
            floor
        } else {
            let n = peer.intervals.len() as f64;
            let mean = peer.intervals.iter().sum::<f64>() / n;
            let var = peer.intervals.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
            (mean + 2.0 * var.sqrt()).max(floor)
        };
        elapsed / (m_eff * std::f64::consts::LN_10)
    }

    /// Newly crossed suspicions: `(rank, φ·100)` for every unlatched
    /// peer whose accrued suspicion passed the threshold. Latches them.
    pub(crate) fn poll(&mut self, now: Instant) -> Vec<(Rank, u64)> {
        let mut out = Vec::new();
        for rank in 0..self.peers.len() {
            if rank == self.me || self.peers[rank].suspected {
                continue;
            }
            // Startup grace: never-heard peers get time to say hello.
            if self.peers[rank].last_heard.is_none()
                && now.saturating_duration_since(self.started) < self.cfg.grace
            {
                continue;
            }
            let phi = self.phi(rank, now);
            if phi >= self.cfg.phi_threshold {
                self.peers[rank].suspected = true;
                out.push((rank, (phi * 100.0) as u64));
            }
        }
        out
    }

    /// Retransmit-budget exhaustion reported by the transport: treat
    /// it as an immediate threshold crossing (the budget spans far
    /// more silence than any φ threshold). Returns true when the
    /// suspicion is new.
    pub(crate) fn force_suspect(&mut self, rank: Rank) -> bool {
        if rank == self.me || rank >= self.peers.len() || self.peers[rank].suspected {
            return false;
        }
        self.peers[rank].suspected = true;
        true
    }

    /// A membership view advanced `rank`'s floor: the old incarnation
    /// is settled, a replacement is (about to be) spawning. Reset the
    /// latch and give the newcomer a fresh silence clock.
    pub(crate) fn reset_peer(&mut self, rank: Rank, now: Instant) {
        if let Some(peer) = self.peers.get_mut(rank) {
            peer.suspected = false;
            peer.last_heard = Some(now);
            peer.intervals.clear();
        }
    }
}

/// One death declaration by the arbiter.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Declaration {
    /// The declared-dead rank.
    pub rank: Rank,
    /// The declared-dead incarnation.
    pub incarnation: u64,
    /// When the arbiter declared it (detection-latency bookkeeping).
    pub at: Instant,
}

struct MembershipState {
    view: MembershipView,
    declarations: Vec<Declaration>,
}

/// The arbiter's membership state, shared between the service thread
/// (which drives declarations from `Suspect` reports) and the cluster
/// harness (which gates respawns on them and reads detection-latency
/// bookkeeping at the end of a run).
pub(crate) struct MembershipTable {
    state: Mutex<MembershipState>,
    changed: Condvar,
}

impl MembershipTable {
    /// A table for `n` application ranks, starting at epoch 0 with
    /// every first incarnation alive.
    pub(crate) fn new(n: usize) -> Self {
        MembershipTable {
            state: Mutex::new(MembershipState {
                view: MembershipView::initial(n),
                declarations: Vec::new(),
            }),
            changed: Condvar::new(),
        }
    }

    /// Declare `incarnation` of `rank` dead. Returns the new certified
    /// view, or `None` when the suspicion is stale (that incarnation
    /// is already below the floor) — idempotent by construction.
    pub(crate) fn declare(&self, rank: Rank, incarnation: u64) -> Option<MembershipView> {
        let mut s = self.state.lock();
        if !s.view.declare_dead(rank, incarnation) {
            return None;
        }
        s.declarations.push(Declaration {
            rank,
            incarnation,
            at: Instant::now(),
        });
        self.changed.notify_all();
        Some(s.view.clone())
    }

    /// The current certified view.
    pub(crate) fn view(&self) -> MembershipView {
        self.state.lock().view.clone()
    }

    /// Respawn gate: block until the floor for `rank` exceeds
    /// `incarnation` (i.e. the predecessor has been *detected and
    /// declared* dead), or until `timeout`. Returns true when the
    /// declaration happened — false means the gate fell through on
    /// the liveness fallback.
    pub(crate) fn wait_floor_above(&self, rank: Rank, incarnation: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock();
        while s.view.live_floor(rank) <= incarnation {
            let Some(left) = deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero()) else {
                return s.view.live_floor(rank) > incarnation;
            };
            if self.changed.wait_for(&mut s, left).timed_out() {
                return s.view.live_floor(rank) > incarnation;
            }
        }
        true
    }

    /// Every declaration so far, in order.
    pub(crate) fn declarations(&self) -> Vec<Declaration> {
        self.state.lock().declarations.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(n: u64) -> Duration {
        Duration::from_millis(n)
    }

    #[test]
    fn config_defaults_and_builders() {
        let cfg = DetectorConfig::default()
            .with_threshold(4.0)
            .with_heartbeat_interval(ms(5))
            .with_grace(ms(50))
            .with_gate_timeout(ms(500));
        assert_eq!(cfg.phi_threshold, 4.0);
        assert_eq!(cfg.heartbeat_interval, ms(5));
        assert_eq!(cfg.grace, ms(50));
        assert_eq!(cfg.gate_timeout, ms(500));
    }

    #[test]
    fn phi_grows_with_silence_and_resets_on_contact() {
        let mut d = Detector::new(0, 2, DetectorConfig::default(), Instant::now());
        let t0 = Instant::now();
        // Regular 2ms traffic from rank 1.
        for i in 0..20 {
            d.heard(1, t0 + ms(2 * i));
        }
        let last = t0 + ms(38);
        let quiet = d.phi(1, last + ms(10));
        let quieter = d.phi(1, last + ms(40));
        assert!(quiet < quieter, "phi must accrue with silence");
        // ~40ms of silence against a 2ms cadence crosses φ = 8.
        assert!(quieter >= 8.0, "phi after 40ms silence: {quieter}");
        // Contact resets the accrual.
        d.heard(1, last + ms(41));
        assert!(d.phi(1, last + ms(42)) < 1.0);
    }

    #[test]
    fn poll_latches_one_report_per_silence_episode() {
        let cfg = DetectorConfig::default().with_grace(Duration::ZERO);
        let mut d = Detector::new(0, 3, cfg, Instant::now());
        let t0 = Instant::now();
        for i in 0..10 {
            d.heard(1, t0 + ms(2 * i));
            d.heard(2, t0 + ms(2 * i));
        }
        // Rank 2 keeps talking; rank 1 goes silent.
        for i in 10..60 {
            d.heard(2, t0 + ms(2 * i));
        }
        let now = t0 + ms(120);
        let reports = d.poll(now);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].0, 1);
        assert!(reports[0].1 >= 800, "phi_x100 {}", reports[0].1);
        // Latched: no duplicate report for the same episode (rank 2
        // stays in touch so it does not cross on its own).
        d.heard(2, now + ms(49));
        assert!(d.poll(now + ms(50)).is_empty());
        // Life clears the latch; a new (long) silence reports again —
        // longer this time, because the 160ms gap widened the window's
        // inter-arrival estimate.
        d.heard(1, now + ms(60));
        d.heard(2, now + ms(60));
        assert!(d.poll(now + ms(61)).is_empty());
        d.heard(2, now + ms(4000));
        let again = d.poll(now + ms(4001));
        assert_eq!(again.len(), 1);
        assert_eq!(again[0].0, 1);
    }

    #[test]
    fn detector_never_suspects_itself_or_the_service_slot() {
        let cfg = DetectorConfig::default().with_grace(Duration::ZERO);
        let mut d = Detector::new(1, 2, cfg, Instant::now());
        // Total silence from everyone, forever.
        let reports = d.poll(Instant::now() + Duration::from_secs(5));
        assert_eq!(reports.len(), 1, "only rank 0 is suspect");
        assert_eq!(reports[0].0, 0);
        // The service slot (rank n = 2) is out of range: unmonitored.
        d.heard(2, Instant::now());
        assert!(!d.force_suspect(2));
        assert!(!d.force_suspect(1), "never self-suspect");
    }

    #[test]
    fn grace_shields_never_heard_peers() {
        let cfg = DetectorConfig::default().with_grace(Duration::from_secs(60));
        let mut d = Detector::new(0, 2, cfg, Instant::now());
        assert!(d.poll(Instant::now() + ms(500)).is_empty());
    }

    #[test]
    fn force_suspect_latches_and_reset_unlatches() {
        let mut d = Detector::new(0, 2, DetectorConfig::default(), Instant::now());
        assert!(d.force_suspect(1));
        assert!(!d.force_suspect(1), "already latched");
        let now = Instant::now();
        d.reset_peer(1, now);
        assert!(d.force_suspect(1), "reset clears the latch");
    }

    #[test]
    fn heartbeat_cadence() {
        let mut d = Detector::new(0, 2, DetectorConfig::default(), Instant::now());
        let t0 = Instant::now();
        assert!(!d.heartbeat_due(t0));
        assert!(d.heartbeat_due(t0 + ms(3)));
        assert!(!d.heartbeat_due(t0 + ms(4)));
        assert!(d.heartbeat_due(t0 + ms(6)));
    }

    #[test]
    fn membership_table_declares_once_and_gates() {
        let table = std::sync::Arc::new(MembershipTable::new(3));
        let view = table.declare(1, 1).expect("first declaration");
        assert_eq!(view.epoch, 1);
        assert_eq!(view.live_floor(1), 2);
        assert!(table.declare(1, 1).is_none(), "stale suspicion is a no-op");
        // Gate: incarnation 2 of rank 1 passes instantly (floor 2 > 1).
        assert!(table.wait_floor_above(1, 1, ms(10)));
        // Incarnation 3 would wait for a second declaration; fallback
        // fires when nobody declares.
        assert!(!table.wait_floor_above(1, 2, ms(20)));
        // A concurrent declaration releases a waiting gate.
        let t2 = table.clone();
        let waiter = std::thread::spawn(move || t2.wait_floor_above(1, 2, Duration::from_secs(5)));
        std::thread::sleep(ms(20));
        assert!(table.declare(1, 2).is_some());
        assert!(waiter.join().unwrap());
        assert_eq!(table.declarations().len(), 2);
        assert_eq!(table.view().epoch, 2);
    }
}
