//! Wire formats exchanged between rank runtimes (inside
//! [`lclog_simnet::Envelope`] payloads) and the application-facing
//! message/matching types.

use bytes::Bytes;
use lclog_core::{Determinant, MembershipView};
use lclog_wire::{impl_wire_enum, impl_wire_struct};

/// Wildcard for [`RecvSpec::source`]: accept a message from any rank —
/// the paper's `MPI_ANY_SOURCE`, the hook on which TDI's relaxation
/// rests.
pub const ANY_SOURCE: Option<usize> = None;

/// Wildcard for [`RecvSpec::tag`].
pub const ANY_TAG: Option<u32> = None;

/// Matching specification for a receive, mirroring `MPI_Recv`'s
/// `source`/`tag` arguments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvSpec {
    /// Accept only this sender (`Some(rank)`) or any sender (`None`).
    /// A specific source expresses *deterministic* delivery in the
    /// paper's sense; `None` is non-deterministic delivery.
    pub source: Option<usize>,
    /// Accept only this tag, or any.
    pub tag: Option<u32>,
}

impl RecvSpec {
    /// Match a specific sender and tag.
    pub fn from(source: usize, tag: u32) -> Self {
        RecvSpec {
            source: Some(source),
            tag: Some(tag),
        }
    }

    /// Match any sender with the given tag.
    pub fn any_source(tag: u32) -> Self {
        RecvSpec {
            source: None,
            tag: Some(tag),
        }
    }

    /// Match anything.
    pub fn any() -> Self {
        RecvSpec {
            source: None,
            tag: None,
        }
    }

    /// Does a queued message from `src` with `tag` match?
    pub fn matches(&self, src: usize, tag: u32) -> bool {
        self.source.is_none_or(|s| s == src) && self.tag.is_none_or(|t| t == tag)
    }
}

/// A delivered application message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppMsg {
    /// Sending rank.
    pub src: usize,
    /// Application tag.
    pub tag: u32,
    /// Payload bytes.
    pub data: Bytes,
}

/// An application message on the wire, with its rollback-recovery
/// header (Algorithm 1's `(MESSAGE, depend_interval, send_index, m)`
/// generalized to any protocol's piggyback).
#[derive(Debug, Clone, PartialEq)]
pub struct AppWire {
    /// Application tag.
    pub tag: u32,
    /// Per-(sender → receiver) send order number, starting at 1.
    pub send_index: u64,
    /// Protocol piggyback (TDI vector / TAG increment / TEL window).
    /// Held as a refcounted handle: on receive it is a zero-copy
    /// window into the ingested frame; on send it wraps the vector the
    /// protocol built (no copy either way).
    pub piggyback: Bytes,
    /// Whether the receiver's runtime must acknowledge ingestion
    /// (rendezvous sends in blocking mode).
    pub needs_ack: bool,
    /// Application payload.
    pub data: Bytes,
}

impl_wire_struct!(AppWire {
    tag,
    send_index,
    piggyback,
    needs_ack,
    data
});

/// `ROLLBACK` broadcast by a recovering incarnation (Algorithm 1
/// line 46).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollbackWire {
    /// The failed process's checkpointed `last_deliver_index` vector:
    /// element `k` tells rank `k` which of its messages survive the
    /// rollback.
    pub last_deliver_index: Vec<u64>,
    /// Distinguishes rebroadcasts so peers can skip duplicate resend
    /// work within one recovery epoch if they choose (we resend
    /// idempotently anyway).
    pub epoch: u64,
}

impl_wire_struct!(RollbackWire {
    last_deliver_index,
    epoch
});

/// `RESPONSE` to a rollback (Algorithm 1 line 48), extended with the
/// determinants PWD protocols need for replay.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseWire {
    /// How many of the failed process's messages this responder had
    /// delivered — the duplicate-send suppression bound
    /// (`rollback_last_send_index`).
    pub delivered_from_you: u64,
    /// Delivery-order determinants about the failed process known to
    /// this responder (empty under TDI).
    pub dets: Vec<Determinant>,
    /// Echo of the rollback epoch being answered.
    pub epoch: u64,
}

impl_wire_struct!(ResponseWire {
    delivered_from_you,
    dets,
    epoch
});

/// `CHECKPOINT_ADVANCE` (Algorithm 1 line 36) extended with the
/// checkpointer's total delivery count so TAG/TEL peers can prune
/// determinant state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CkptAdvanceWire {
    /// `last_deliver_index[you]` at the checkpoint: release log items
    /// destined to me with `send_index <=` this.
    pub delivered_from_you: u64,
    /// My total delivered count at the checkpoint (determinant GC
    /// horizon).
    pub total_delivered: u64,
}

impl_wire_struct!(CkptAdvanceWire {
    delivered_from_you,
    total_delivered
});

/// A suspicion report sent to the membership arbiter: the detector at
/// some rank has accrued past its threshold for `rank` and believes
/// incarnation `incarnation` of it is dead. Carrying the *believed*
/// incarnation keeps stale suspicions harmless: by the time the report
/// lands the arbiter may already know a newer incarnation, and must
/// not kill it on old evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuspectWire {
    /// The rank being suspected.
    pub rank: u32,
    /// The incarnation the suspecting detector last heard from.
    pub incarnation: u64,
}

impl_wire_struct!(SuspectWire { rank, incarnation });

/// Everything that can travel between runtimes.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMsg {
    /// Application message with recovery header.
    App(AppWire),
    /// Ingestion acknowledgement for a rendezvous send (`send_index`
    /// of the acknowledged message). Per-message and kernel-level —
    /// distinct from the transport's frame-sequence `AckFrame`s, which
    /// are cumulative and coalesced to one per peer per ingest batch.
    Ack(u64),
    /// Recovery broadcast from an incarnation.
    Rollback(RollbackWire),
    /// Reply to a `Rollback`.
    Response(ResponseWire),
    /// Checkpoint notification for log GC and determinant pruning.
    CkptAdvance(CkptAdvanceWire),
    /// TEL: determinants shipped to the event-logger service.
    LogDets(Vec<Determinant>),
    /// TEL: logger acknowledges stable storage of the sender's
    /// determinants up to this deliver index.
    LogAck(u64),
    /// TEL: incarnation asks the logger for the failed rank's stored
    /// determinants.
    LogQuery(u32),
    /// TEL: logger's reply to a query.
    LogQueryResp(Vec<Determinant>),
    /// Detector → membership arbiter: a suspicion report.
    Suspect(SuspectWire),
    /// Membership arbiter → everyone: a certified epoch-stamped view.
    Membership(MembershipView),
    /// TDI-S: receiver could not decode a piggyback frame from the
    /// carrier rank and asks it for a resync snapshot.
    ResyncReq(u32),
    /// TDI-S: sender's answer to a `ResyncReq` — an epoch/seq-stamped
    /// full-vector snapshot re-anchoring the channel's delta chain.
    ResyncSnap(Bytes),
}

impl_wire_enum!(WireMsg {
    0 => App(w),
    1 => Ack(idx),
    2 => Rollback(w),
    3 => Response(w),
    4 => CkptAdvance(w),
    5 => LogDets(d),
    6 => LogAck(upto),
    7 => LogQuery(rank),
    8 => LogQueryResp(d),
    9 => Suspect(s),
    10 => Membership(v),
    11 => ResyncReq(rank),
    12 => ResyncSnap(b),
});

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_wire::{decode_from_slice, encode_to_vec};

    #[test]
    fn spec_matching() {
        let s = RecvSpec::from(2, 9);
        assert!(s.matches(2, 9));
        assert!(!s.matches(1, 9));
        assert!(!s.matches(2, 8));
        let any_src = RecvSpec::any_source(9);
        assert!(any_src.matches(0, 9));
        assert!(any_src.matches(7, 9));
        assert!(!any_src.matches(7, 1));
        assert!(RecvSpec::any().matches(3, 3));
        assert_eq!(RecvSpec::any().source, ANY_SOURCE);
        assert_eq!(RecvSpec::any().tag, ANY_TAG);
    }

    #[test]
    fn wire_roundtrip_all_variants() {
        let det = Determinant {
            sender: 1,
            send_index: 2,
            receiver: 3,
            deliver_index: 4,
        };
        let msgs = vec![
            WireMsg::App(AppWire {
                tag: 5,
                send_index: 6,
                piggyback: Bytes::from(vec![1, 2, 3]),
                needs_ack: true,
                data: Bytes::from_static(b"xyz"),
            }),
            WireMsg::Ack(42),
            WireMsg::Rollback(RollbackWire {
                last_deliver_index: vec![0, 3, 9],
                epoch: 2,
            }),
            WireMsg::Response(ResponseWire {
                delivered_from_you: 7,
                dets: vec![det],
                epoch: 2,
            }),
            WireMsg::CkptAdvance(CkptAdvanceWire {
                delivered_from_you: 1,
                total_delivered: 11,
            }),
            WireMsg::LogDets(vec![det, det]),
            WireMsg::LogAck(13),
            WireMsg::LogQuery(3),
            WireMsg::LogQueryResp(vec![det]),
            WireMsg::Suspect(SuspectWire {
                rank: 2,
                incarnation: 3,
            }),
            WireMsg::Membership(MembershipView {
                epoch: 4,
                floor: vec![1, 2, 1],
            }),
            WireMsg::ResyncReq(5),
            WireMsg::ResyncSnap(Bytes::from(vec![7, 8, 9])),
        ];
        for m in msgs {
            let bytes = encode_to_vec(&m);
            let back: WireMsg = decode_from_slice(&bytes).unwrap();
            assert_eq!(back, m);
        }
    }
}
