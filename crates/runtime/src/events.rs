//! Structured run timelines: every fault-tolerance action a rank
//! takes — checkpoints, crashes, rollback handshakes, log resends —
//! recorded with microsecond timestamps. The observability surface a
//! rollback-recovery toolkit needs when a recovery goes sideways.
//!
//! Collection is off unless [`ClusterConfig::with_trace`] enables it;
//! when on, every kernel shares one lock-protected collector and the
//! [`RunReport::timeline`] carries the merged, time-ordered result.
//!
//! [`ClusterConfig::with_trace`]: crate::ClusterConfig::with_trace
//! [`RunReport::timeline`]: crate::RunReport::timeline

use lclog_core::Rank;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A rank incarnation started (1 = original process).
    Spawned {
        /// Incarnation number.
        incarnation: u64,
    },
    /// A checkpoint was written.
    Checkpoint {
        /// Application step the image covers.
        step: u64,
        /// Encoded image size.
        bytes: usize,
    },
    /// The failure injector crashed this incarnation.
    Crashed {
        /// Step counter at the crash.
        step: u64,
    },
    /// An incarnation broadcast `ROLLBACK`.
    RollbackBroadcast {
        /// Broadcast epoch (1 = first attempt; higher = re-broadcast).
        epoch: u64,
    },
    /// A survivor answered our rollback.
    ResponseReceived {
        /// Responding rank.
        from: Rank,
    },
    /// A survivor resent logged messages to a recovering peer.
    LogResent {
        /// The recovering rank.
        to: Rank,
        /// Number of messages resent.
        count: usize,
    },
    /// All recovery information has arrived; the roll-forward barrier
    /// (PWD protocols) lifted.
    RecoverySynced {
        /// Microseconds spent collecting it.
        sync_us: u64,
    },
    /// The recovery state machine took an edge
    /// (`running → logging → replaying → synced`).
    RecoveryTransition {
        /// Phase left.
        from: &'static str,
        /// Phase entered.
        to: &'static str,
    },
    /// The reliability layer exhausted its retransmit budget against a
    /// silent peer and stopped waiting on it.
    PeerWrittenOff {
        /// The written-off rank.
        peer: Rank,
        /// Retransmit attempts spent before giving up.
        attempts: u32,
    },
    /// The TEL event-logger service stored a determinant batch.
    LoggerStored {
        /// Rank whose determinants were stored.
        from: Rank,
        /// Determinants in the batch.
        count: usize,
        /// Highest stable determinant sequence after the append.
        upto: u64,
    },
    /// The TEL event-logger service answered a recovery `LOG_QUERY`.
    LoggerQueried {
        /// The recovering rank that asked.
        failed: Rank,
        /// Stable determinants returned.
        count: usize,
    },
    /// The application finished on this rank.
    Done {
        /// Final step count.
        step: u64,
    },
    /// The accrual failure detector at this rank crossed its threshold
    /// for a peer and reported a suspicion to the membership arbiter.
    PeerSuspected {
        /// The suspected rank.
        peer: Rank,
        /// The suspected incarnation.
        incarnation: u64,
        /// Accrued suspicion at the crossing, in hundredths of φ.
        phi_x100: u64,
    },
    /// The membership arbiter declared an incarnation dead and bumped
    /// the epoch.
    MembershipBumped {
        /// The new membership epoch.
        epoch: u64,
        /// The rank declared dead.
        dead: Rank,
        /// The incarnation declared dead.
        incarnation: u64,
    },
    /// This rank learned it was declared dead while still running (a
    /// false suspicion): it must drop volatile state and rejoin via
    /// the normal rollback path.
    SelfFenced {
        /// Membership epoch of the view that fenced it.
        epoch: u64,
    },
    /// A frame from a fenced (stale) incarnation was rejected at the
    /// reliability layer.
    StaleFenced {
        /// The rank whose stale incarnation sent the frame.
        peer: Rank,
        /// The stale incarnation.
        incarnation: u64,
    },
    /// The tracking layer's piggyback merge rejected a message the
    /// delivery gate had approved. The message was discarded, the
    /// delivery counter left untouched, and the rank marked
    /// desynchronized so its engine surfaces [`crate::Fault::Desync`].
    TrackingDesync {
        /// Sender of the poisoned message.
        src: Rank,
        /// Its per-channel send index.
        send_index: u64,
    },
    /// The failure injector wiped this rank's local stable store
    /// along with the process (node loss).
    StoreWiped {
        /// Checkpoint generations deleted with the store.
        generations: usize,
    },
    /// The replicator's circuit breaker opened: the remote backend is
    /// down and shipping degraded to the bounded local spill buffer.
    DegradedEntered {
        /// Bytes queued in the spill buffer at the transition.
        spill_bytes: usize,
    },
    /// The remote backend answered again: the breaker closed and the
    /// manifest was re-synced.
    DegradedExited {
        /// Degraded-window duration in milliseconds.
        ms: u64,
    },
    /// A respawned rank with a wiped local store restored a checkpoint
    /// generation from the remote.
    RemoteRestored {
        /// The restored checkpoint version.
        version: u64,
        /// Newer generations skipped because their stored bytes failed
        /// certification.
        skipped: u32,
    },
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::Spawned { incarnation } => write!(f, "spawned (incarnation {incarnation})"),
            EventKind::Checkpoint { step, bytes } => {
                write!(f, "checkpoint at step {step} ({bytes} bytes)")
            }
            EventKind::Crashed { step } => write!(f, "CRASHED at step {step}"),
            EventKind::RollbackBroadcast { epoch } => {
                write!(f, "broadcast ROLLBACK (epoch {epoch})")
            }
            EventKind::ResponseReceived { from } => write!(f, "RESPONSE from rank {from}"),
            EventKind::LogResent { to, count } => {
                write!(f, "resent {count} logged messages to rank {to}")
            }
            EventKind::RecoverySynced { sync_us } => {
                write!(f, "recovery info complete after {sync_us} µs")
            }
            EventKind::RecoveryTransition { from, to } => {
                write!(f, "recovery phase {from} -> {to}")
            }
            EventKind::PeerWrittenOff { peer, attempts } => {
                write!(f, "wrote off rank {peer} after {attempts} retransmits")
            }
            EventKind::LoggerStored { from, count, upto } => {
                write!(f, "logger stored {count} determinants from rank {from} (upto {upto})")
            }
            EventKind::LoggerQueried { failed, count } => {
                write!(f, "logger answered rank {failed}'s query with {count} determinants")
            }
            EventKind::Done { step } => write!(f, "done at step {step}"),
            EventKind::PeerSuspected {
                peer,
                incarnation,
                phi_x100,
            } => write!(
                f,
                "suspected rank {peer} (incarnation {incarnation}, phi {}.{:02})",
                phi_x100 / 100,
                phi_x100 % 100
            ),
            EventKind::MembershipBumped {
                epoch,
                dead,
                incarnation,
            } => write!(
                f,
                "membership epoch {epoch}: declared rank {dead} incarnation {incarnation} dead"
            ),
            EventKind::SelfFenced { epoch } => {
                write!(f, "FENCED by membership epoch {epoch}: dropping volatile state")
            }
            EventKind::StaleFenced { peer, incarnation } => {
                write!(f, "rejected frame from fenced incarnation {incarnation} of rank {peer}")
            }
            EventKind::TrackingDesync { src, send_index } => {
                write!(
                    f,
                    "DESYNC: tracking merge rejected gate-approved message {send_index} from rank {src}"
                )
            }
            EventKind::StoreWiped { generations } => {
                write!(f, "local store WIPED ({generations} generations lost)")
            }
            EventKind::DegradedEntered { spill_bytes } => {
                write!(f, "replication DEGRADED: spilling locally ({spill_bytes} bytes queued)")
            }
            EventKind::DegradedExited { ms } => {
                write!(f, "replication recovered after {ms} ms degraded; manifest re-synced")
            }
            EventKind::RemoteRestored { version, skipped } => {
                write!(
                    f,
                    "restored checkpoint v{version} from remote ({skipped} damaged generations skipped)"
                )
            }
        }
    }
}

/// One timeline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Microseconds since the cluster run started.
    pub at_us: u64,
    /// Acting rank.
    pub rank: Rank,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>9.3} ms] rank {}: {}",
            self.at_us as f64 / 1e3,
            self.rank,
            self.kind
        )
    }
}

/// Shared, cheap-to-clone event collector. A disabled sink is a
/// no-op with a single branch per emission.
#[derive(Clone)]
pub struct EventSink {
    inner: Option<Arc<SinkInner>>,
}

struct SinkInner {
    start: Instant,
    events: Mutex<Vec<Event>>,
}

impl EventSink {
    /// A recording sink anchored at "now".
    pub fn recording() -> Self {
        EventSink {
            inner: Some(Arc::new(SinkInner {
                start: Instant::now(),
                events: Mutex::new(Vec::new()),
            })),
        }
    }

    /// A disabled sink (default).
    pub fn disabled() -> Self {
        EventSink { inner: None }
    }

    /// Is this sink recording?
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// Record an event (no-op when disabled).
    pub fn emit(&self, rank: Rank, kind: EventKind) {
        if let Some(inner) = &self.inner {
            let at_us = inner.start.elapsed().as_micros() as u64;
            inner.events.lock().push(Event { at_us, rank, kind });
        }
    }

    /// Drain the collected events, time-ordered.
    pub fn take(&self) -> Vec<Event> {
        match &self.inner {
            Some(inner) => {
                let mut events = std::mem::take(&mut *inner.events.lock());
                events.sort_by_key(|e| e.at_us);
                events
            }
            None => Vec::new(),
        }
    }
}

impl Default for EventSink {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_collects_nothing() {
        let sink = EventSink::disabled();
        assert!(!sink.is_recording());
        sink.emit(0, EventKind::Done { step: 1 });
        assert!(sink.take().is_empty());
    }

    #[test]
    fn recording_sink_orders_events() {
        let sink = EventSink::recording();
        assert!(sink.is_recording());
        sink.emit(1, EventKind::Spawned { incarnation: 1 });
        sink.emit(0, EventKind::Crashed { step: 5 });
        let clone = sink.clone();
        clone.emit(2, EventKind::Done { step: 9 });
        let events = sink.take();
        assert_eq!(events.len(), 3);
        assert!(events.windows(2).all(|w| w[0].at_us <= w[1].at_us));
        // Drained.
        assert!(sink.take().is_empty());
    }

    #[test]
    fn display_formats_read_well() {
        let e = Event {
            at_us: 1500,
            rank: 3,
            kind: EventKind::RollbackBroadcast { epoch: 2 },
        };
        let text = e.to_string();
        assert!(text.contains("rank 3"));
        assert!(text.contains("ROLLBACK"));
        assert!(text.contains("1.500 ms"));
    }
}
