//! The reliability layer as the kernel sees it: the PR-1 transport
//! (CRC framing, sequencing, dedup, ack/retransmit, epochs) plus the
//! *application-level* rendezvous acknowledgement counters.
//!
//! This is the innermost lock of the kernel's hierarchy: it is taken
//! on every wire transmission and every raw-envelope ingestion, and
//! never held while any other kernel lock is acquired — `ingest`
//! strips the transport frame under this lock, releases it, and only
//! then dispatches the inner message to the layer that owns it.

use crate::detector::Detector;
use crate::message::WireMsg;
use crate::transport::Transport;
use bytes::Bytes;
use lclog_core::{CounterVector, Rank};
use lclog_simnet::Envelope;

/// Transport + rendezvous-ack state.
pub(crate) struct Reliability {
    pub transport: Transport,
    /// Highest acknowledged rendezvous send per destination.
    pub acked: CounterVector,
    /// φ-accrual failure detector (detected-failures mode only). Lives
    /// here so its liveness feed — intact frames surfaced by the
    /// transport — never needs another lock.
    pub detector: Option<Detector>,
}

impl Reliability {
    pub fn new(transport: Transport, n: usize) -> Self {
        Reliability {
            transport,
            acked: CounterVector::zeroed(n),
            detector: None,
        }
    }

    /// Install the failure detector and switch the transport's budget
    /// verdicts to suspicion inputs.
    pub fn set_detector(&mut self, detector: Detector) {
        self.transport.set_suspicion_mode(true);
        self.detector = Some(detector);
    }

    /// Send one wire message reliably to `dst`.
    ///
    /// Every wire message crosses the transport: CRC framing,
    /// sequencing, and ack/retransmit mask the chaos fabric's drops,
    /// duplicates, and corruptions. Sends to dead ranks are
    /// retransmitted until the peer's next incarnation answers (or the
    /// budget writes it off); recovery resends cover anything lost
    /// with the old incarnation.
    /// The frame (CRC + header + encoded message) is built in one
    /// pass into one allocation; the returned `Bytes` is the
    /// encoded-message region of that frame as a zero-copy window,
    /// which `app_send` hands to the sender log.
    pub fn send_wire(&mut self, dst: Rank, msg: &WireMsg) -> Bytes {
        self.transport.send_msg(dst, msg)
    }

    /// Resend an already-encoded wire message (a window into the
    /// sender log) with zero payload copies — only a small frame
    /// header is built fresh.
    pub fn send_encoded(&mut self, dst: Rank, inner: Bytes) {
        self.transport.send_encoded(dst, inner);
    }

    /// Strip the transport frame off one raw envelope. Returns the
    /// inner encoded [`WireMsg`] (`None` for control frames,
    /// duplicates, and corrupt envelopes). Intact frames double as
    /// liveness evidence for the detector.
    pub fn ingest(&mut self, env: Envelope) -> Option<bytes::Bytes> {
        let inner = self.transport.ingest(env);
        if let Some(det) = &mut self.detector {
            let now = self.transport.clock().now();
            self.transport.take_heard(|rank| det.heard(rank, now));
        }
        inner
    }

    /// Record proof that `peer` has consumed our messages up to
    /// `upto` — implicit acknowledgement for any pending rendezvous.
    pub fn note_consumed(&mut self, peer: Rank, upto: u64) {
        if upto > self.acked.get(peer) {
            self.acked.set(peer, upto);
        }
    }
}
