//! The reliability layer as the kernel sees it: the PR-1 transport
//! (CRC framing, sequencing, dedup, ack/retransmit, epochs) plus the
//! *application-level* rendezvous acknowledgement counters.
//!
//! Since the per-peer transport sharding this layer is **lock-free at
//! this level**: the transport shards internally per peer, the
//! rendezvous counters are atomics, and only the failure detector —
//! cold-path, tick-driven — sits behind its own small mutex. The
//! kernel embeds `Reliability` directly (no `Mutex<Reliability>` leaf
//! lock), so wire transmissions and raw-envelope ingestions on
//! different channels never serialize against each other.

use crate::detector::Detector;
use crate::message::WireMsg;
use crate::ring::AtomicCounters;
use crate::transport::Transport;
use bytes::Bytes;
use lclog_core::Rank;
use lclog_simnet::Envelope;
use parking_lot::Mutex;

/// Transport + rendezvous-ack state. All methods take `&self`.
pub(crate) struct Reliability {
    pub transport: Transport,
    /// Highest acknowledged rendezvous send per destination
    /// (monotone, so lock-free max-updates are safe).
    pub acked: AtomicCounters,
    /// φ-accrual failure detector (detected-failures mode only).
    /// Tick-driven cold path; its own leaf mutex, never held across
    /// any other kernel lock.
    detector: Mutex<Option<Detector>>,
    /// Lock-free fast check so the per-ingest detector feed costs
    /// nothing when no detector is installed (the common case).
    has_detector: bool,
}

impl Reliability {
    pub fn new(transport: Transport, n: usize) -> Self {
        Reliability {
            transport,
            acked: AtomicCounters::zeroed(n),
            detector: Mutex::new(None),
            has_detector: false,
        }
    }

    /// Install the failure detector and switch the transport's budget
    /// verdicts to suspicion inputs. Construction-time only (`&mut`).
    pub fn set_detector(&mut self, detector: Detector) {
        self.transport.set_suspicion_mode(true);
        *self.detector.get_mut() = Some(detector);
        self.has_detector = true;
    }

    /// Run `f` against the installed detector, if any.
    pub fn with_detector<R>(&self, f: impl FnOnce(&mut Detector) -> R) -> Option<R> {
        if !self.has_detector {
            return None;
        }
        self.detector.lock().as_mut().map(f)
    }

    /// Send one wire message reliably to `dst`.
    ///
    /// Every wire message crosses the transport: CRC framing,
    /// sequencing, and ack/retransmit mask the chaos fabric's drops,
    /// duplicates, and corruptions. Sends to dead ranks are
    /// retransmitted until the peer's next incarnation answers (or the
    /// budget writes it off); recovery resends cover anything lost
    /// with the old incarnation.
    /// The frame (CRC + header + encoded message) is built in one
    /// pass into one allocation; the returned `Bytes` is the
    /// encoded-message region of that frame as a zero-copy window,
    /// which `app_send` hands to the sender log. Locks only the
    /// destination's channel shard.
    pub fn send_wire(&self, dst: Rank, msg: &WireMsg) -> Bytes {
        self.transport.send_msg(dst, msg)
    }

    /// Resend an already-encoded wire message (a window into the
    /// sender log) with zero payload copies — only a small frame
    /// header is built fresh.
    pub fn send_encoded(&self, dst: Rank, inner: Bytes) {
        self.transport.send_encoded(dst, inner);
    }

    /// Strip the transport frame off one raw envelope. Returns the
    /// inner encoded [`WireMsg`] (`None` for control frames,
    /// duplicates, and corrupt envelopes). Intact frames double as
    /// liveness evidence for the detector. Acks are coalesced: finish
    /// a batch of ingests with [`Reliability::flush_acks`].
    pub fn ingest(&self, env: Envelope) -> Option<Bytes> {
        let inner = self.transport.ingest(env);
        if self.has_detector {
            let now = self.transport.clock().now();
            self.with_detector(|det| {
                self.transport.take_heard(|rank| det.heard(rank, now));
            });
        }
        inner
    }

    /// Flush the transport's coalesced cumulative acks (one frame per
    /// peer that sent data since the last flush).
    pub fn flush_acks(&self) {
        self.transport.flush_acks();
    }

    /// Record proof that `peer` has consumed our messages up to
    /// `upto` — implicit acknowledgement for any pending rendezvous.
    pub fn note_consumed(&self, peer: Rank, upto: u64) {
        self.acked.max_up(peer, upto);
    }
}
