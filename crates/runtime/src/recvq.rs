//! The receiving queue (queue "B" of Fig. 4b): messages that have
//! arrived but have not yet been delivered to the application.
//!
//! A message waits here when (a) the application has not posted a
//! matching receive, (b) its per-sender FIFO predecessor has not been
//! delivered, or (c) the protocol's dependency gate says
//! [`DeliveryVerdict::Wait`] — during recovery, logged messages can
//! arrive in any order (§III.E) and this queue is where they sit until
//! deliverable.
//!
//! Layout: one FIFO lane per sender, each entry carrying a globally
//! monotone arrival stamp. Dedup (`contains`) and pruning
//! (`drop_repetitive`) touch only the one lane they concern instead of
//! rescanning every queued message, and matched extraction compares at
//! most one candidate per lane instead of gate-probing the whole
//! arrival sequence. The stamp total-orders candidates across lanes,
//! so extraction still returns the globally first match in arrival
//! order — the lane split changes cost, not semantics. The per-lane
//! candidate view is also what the schedule explorer permutes: every
//! lane whose head candidate passes the gate is a legal next delivery
//! ([`RecvQueue::eligible_sources`]).
//!
//! Under the batched data plane (DESIGN.md §11) messages arrive here
//! a drained-ring batch at a time rather than one by one; arrival
//! stamps are assigned at admission, so within a batch they follow
//! ring (= per-sender transport) order and the cross-lane total order
//! is whatever interleaving the drain observed — exactly the
//! order-insensitivity the explorer already checks.
//!
//! [`DeliveryVerdict::Wait`]: lclog_core::DeliveryVerdict

use crate::message::{AppWire, RecvSpec};
use lclog_core::Rank;
use std::collections::VecDeque;

/// A queued, not-yet-delivered application message.
#[derive(Debug, Clone)]
pub struct Pending {
    /// Sending rank.
    pub src: Rank,
    /// Wire contents (tag, send_index, piggyback, payload).
    pub wire: AppWire,
}

#[derive(Debug, Clone)]
struct Stamped {
    /// Global arrival order across all lanes (monotone, never reused).
    arrival: u64,
    wire: AppWire,
}

/// One sender's arrivals, in arrival order.
#[derive(Debug, Default, Clone)]
struct Lane {
    entries: VecDeque<Stamped>,
    /// Highest `send_index` ever pushed into this lane — an upper
    /// bound on every queued entry. Lets [`RecvQueue::contains`]
    /// reject above-bound probes without scanning, which is the
    /// steady-state case: per-sender FIFO transport means every fresh
    /// arrival carries a new high index, so admitting a B-message
    /// backlog dedups in O(B) instead of O(B²). Below-bound probes
    /// (recovery resends reusing pre-crash indices) fall back to the
    /// lane scan.
    ceil: u64,
}

/// FIFO-arrival buffer with matched extraction, laned per sender.
#[derive(Debug, Default, Clone)]
pub struct RecvQueue {
    /// `lanes[src]` holds that sender's arrivals in order. Lanes are
    /// grown on demand so the queue needs no up-front rank count.
    lanes: Vec<Lane>,
    /// Next arrival stamp to hand out.
    next_arrival: u64,
    /// Total queued messages across all lanes.
    len: usize,
}

impl RecvQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty queue with lanes pre-allocated for `ranks` senders.
    pub fn with_ranks(ranks: usize) -> Self {
        Self {
            lanes: (0..ranks).map(|_| Lane::default()).collect(),
            next_arrival: 0,
            len: 0,
        }
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    #[allow(dead_code)] // keeps the len/is_empty pair complete
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Is a message with this identity already queued? (Duplicate
    /// resends during recovery are dropped at ingestion.) Scans only
    /// the sender's own lane.
    pub fn contains(&self, src: Rank, send_index: u64) -> bool {
        self.lanes.get(src).is_some_and(|lane| {
            send_index <= lane.ceil
                && lane.entries.iter().any(|s| s.wire.send_index == send_index)
        })
    }

    /// Append an arrival.
    pub fn push(&mut self, pending: Pending) {
        if pending.src >= self.lanes.len() {
            self.lanes.resize_with(pending.src + 1, Lane::default);
        }
        let arrival = self.next_arrival;
        self.next_arrival += 1;
        let lane = &mut self.lanes[pending.src];
        lane.ceil = lane.ceil.max(pending.wire.send_index);
        lane.entries.push_back(Stamped {
            arrival,
            wire: pending.wire,
        });
        self.len += 1;
    }

    /// Position of the first entry in `src`'s lane that matches `spec`
    /// and passes `gate`, if any.
    fn lane_candidate(
        &self,
        src: Rank,
        spec: RecvSpec,
        gate: &mut impl FnMut(Rank, u64, &[u8]) -> bool,
    ) -> Option<usize> {
        self.lanes[src].entries.iter().position(|s| {
            spec.matches(src, s.wire.tag) && gate(src, s.wire.send_index, &s.wire.piggyback)
        })
    }

    /// Lanes this spec can draw from: all of them for an `ANY_SOURCE`
    /// receive, exactly one otherwise.
    fn lane_range(&self, spec: RecvSpec) -> std::ops::Range<Rank> {
        match spec.source {
            Some(src) if src < self.lanes.len() => src..src + 1,
            Some(_) => 0..0,
            None => 0..self.lanes.len(),
        }
    }

    /// Remove and return the first message (in global arrival order)
    /// that matches `spec` *and* satisfies `gate`. `gate` receives
    /// `(src, send_index, piggyback)` and implements the FIFO +
    /// protocol delivery conditions; it must be a pure predicate of
    /// the current queue state (it may be probed in any lane order).
    pub fn take_first_matching(
        &mut self,
        spec: RecvSpec,
        mut gate: impl FnMut(Rank, u64, &[u8]) -> bool,
    ) -> Option<Pending> {
        let mut best: Option<(u64, Rank, usize)> = None;
        for src in self.lane_range(spec) {
            if let Some(pos) = self.lane_candidate(src, spec, &mut gate) {
                let arrival = self.lanes[src].entries[pos].arrival;
                if best.is_none_or(|(a, _, _)| arrival < a) {
                    best = Some((arrival, src, pos));
                }
            }
        }
        let (_, src, pos) = best?;
        let stamped = self.lanes[src].entries.remove(pos).expect("candidate position");
        self.len -= 1;
        Some(Pending {
            src,
            wire: stamped.wire,
        })
    }

    /// First passing candidate per lane, in global arrival order:
    /// `(src, send_index, piggyback)` for every lane whose head
    /// candidate matches `spec` and passes `gate`. Piggybacks are
    /// refcounted [`Bytes`] clones, so the snapshot borrows nothing —
    /// callers can drop the queue's lock and gate the candidates
    /// against protocol state under a *different* lock, then come back
    /// with [`take_exact`]. This is the delivery hot path's
    /// phase-1 snapshot (DESIGN.md §11: `try_deliver` never holds
    /// `tracking` and `delivery` together).
    ///
    /// [`Bytes`]: bytes::Bytes
    /// [`take_exact`]: RecvQueue::take_exact
    pub fn candidate_heads(
        &self,
        spec: RecvSpec,
        mut gate: impl FnMut(Rank, u64, &[u8]) -> bool,
    ) -> Vec<(Rank, u64, bytes::Bytes)> {
        let mut found: Vec<(u64, Rank, u64, bytes::Bytes)> = Vec::new();
        for src in self.lane_range(spec) {
            if let Some(pos) = self.lane_candidate(src, spec, &mut gate) {
                let s = &self.lanes[src].entries[pos];
                found.push((s.arrival, src, s.wire.send_index, s.wire.piggyback.clone()));
            }
        }
        found.sort_unstable_by_key(|&(arrival, ..)| arrival);
        found
            .into_iter()
            .map(|(_, src, idx, pb)| (src, idx, pb))
            .collect()
    }

    /// Remove the message with this exact identity, wherever it sits
    /// in its lane. The phase-3 counterpart of
    /// [`candidate_heads`](RecvQueue::candidate_heads): after the
    /// snapshot has been gated elsewhere, the winner is extracted by
    /// identity rather than by re-running the match. Returns `None`
    /// if the message is no longer queued.
    pub fn take_exact(&mut self, src: Rank, send_index: u64) -> Option<Pending> {
        let lane = self.lanes.get_mut(src)?;
        let pos = lane
            .entries
            .iter()
            .position(|s| s.wire.send_index == send_index)?;
        let stamped = lane.entries.remove(pos).expect("candidate position");
        self.len -= 1;
        Some(Pending {
            src,
            wire: stamped.wire,
        })
    }

    /// Senders that could legally satisfy `spec` right now, ordered by
    /// the arrival stamp of each lane's first passing candidate (so
    /// index 0 is what [`take_first_matching`] would pick). Every
    /// element is a *legal* alternative next delivery — this is the
    /// schedule explorer's choice-point set.
    ///
    /// [`take_first_matching`]: RecvQueue::take_first_matching
    pub fn eligible_sources(
        &self,
        spec: RecvSpec,
        mut gate: impl FnMut(Rank, u64, &[u8]) -> bool,
    ) -> Vec<Rank> {
        let mut found: Vec<(u64, Rank)> = Vec::new();
        for src in self.lane_range(spec) {
            if let Some(pos) = self.lane_candidate(src, spec, &mut gate) {
                found.push((self.lanes[src].entries[pos].arrival, src));
            }
        }
        found.sort_unstable();
        found.into_iter().map(|(_, src)| src).collect()
    }

    /// Compact view for diagnostics: `(src, send_index, tag)` per
    /// queued message, in global arrival order.
    pub fn summary(&self) -> Vec<(Rank, u64, u32)> {
        let mut rows: Vec<(u64, Rank, u64, u32)> = self
            .lanes
            .iter()
            .enumerate()
            .flat_map(|(src, lane)| {
                lane.entries
                    .iter()
                    .map(move |s| (s.arrival, src, s.wire.send_index, s.wire.tag))
            })
            .collect();
        rows.sort_unstable();
        rows.into_iter()
            .map(|(_, src, idx, tag)| (src, idx, tag))
            .collect()
    }

    /// Drop queued messages from `src` whose `send_index` is already
    /// covered by the receiver's delivery counter (repetitive messages
    /// that slipped in before the counter advanced). Touches only the
    /// front of that sender's lane: O(dropped), normally zero.
    ///
    /// Front-only is sufficient because covered entries cannot hide
    /// mid-lane — admission rejects indices at or below the counter
    /// (`Admit::Repetitive`), `contains` dedup keeps at most one copy
    /// per identity queued, and the counter only passes an index by
    /// delivering that sole copy (which extraction removes). The
    /// predecessor of this method ran a full-lane `retain` on every
    /// delivery, which made draining a B-message backlog O(B²) — the
    /// HP1 contended cell's 200k-send backlog took minutes to drain;
    /// see `drains_large_backlog_in_linear_time`.
    pub fn drop_repetitive(&mut self, src: Rank, upto: u64) {
        let Some(lane) = self.lanes.get_mut(src) else {
            return;
        };
        while lane
            .entries
            .front()
            .is_some_and(|s| s.wire.send_index <= upto)
        {
            lane.entries.pop_front();
            self.len -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pending(src: Rank, tag: u32, send_index: u64) -> Pending {
        Pending {
            src,
            wire: AppWire {
                tag,
                send_index,
                piggyback: Bytes::new(),
                needs_ack: false,
                data: Bytes::new(),
            },
        }
    }

    #[test]
    fn takes_in_arrival_order() {
        let mut q = RecvQueue::new();
        q.push(pending(0, 1, 1));
        q.push(pending(1, 1, 1));
        let taken = q.take_first_matching(RecvSpec::any(), |_, _, _| true).unwrap();
        assert_eq!(taken.src, 0);
        let taken = q.take_first_matching(RecvSpec::any(), |_, _, _| true).unwrap();
        assert_eq!(taken.src, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn spec_filters_and_gate_blocks() {
        let mut q = RecvQueue::new();
        q.push(pending(0, 1, 2)); // FIFO gap: index 1 not delivered
        q.push(pending(2, 1, 1));
        // Gate admits only contiguous indices starting at 1.
        let gate = |_src: Rank, idx: u64, _pb: &[u8]| idx == 1;
        let taken = q.take_first_matching(RecvSpec::any_source(1), gate).unwrap();
        assert_eq!(taken.src, 2);
        // The gapped message stays queued.
        assert_eq!(q.len(), 1);
        assert!(q.contains(0, 2));
    }

    #[test]
    fn source_specific_spec_skips_other_senders() {
        let mut q = RecvQueue::new();
        q.push(pending(0, 7, 1));
        q.push(pending(1, 7, 1));
        let taken = q
            .take_first_matching(RecvSpec::from(1, 7), |_, _, _| true)
            .unwrap();
        assert_eq!(taken.src, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drop_repetitive_prunes_stale_entries() {
        let mut q = RecvQueue::new();
        q.push(pending(0, 1, 1));
        q.push(pending(0, 1, 2));
        q.push(pending(1, 1, 1));
        q.drop_repetitive(0, 1);
        assert_eq!(q.len(), 2);
        assert!(!q.contains(0, 1));
        assert!(q.contains(0, 2));
        assert!(q.contains(1, 1));
    }

    #[test]
    fn drains_large_backlog_in_linear_time() {
        // The batched data plane can admit a whole send backlog in one
        // ingest round, then deliver it in one drain loop. Both halves
        // must be O(backlog): `contains` short-circuits on the lane
        // ceiling for every fresh (new-high-index) arrival, and
        // `drop_repetitive` pops only covered front entries. The old
        // full-lane scans made this O(B²) — at this B the test (and
        // HP1's full-mode drain) ran for minutes instead of
        // milliseconds.
        const B: u64 = 100_000;
        let mut q = RecvQueue::with_ranks(2);
        for idx in 1..=B {
            assert!(!q.contains(0, idx));
            q.push(pending(0, 1, idx));
        }
        assert_eq!(q.len(), B as usize);
        let mut counter = 0u64;
        while let Some(p) =
            q.take_first_matching(RecvSpec::any(), |_, idx, _| idx == counter + 1)
        {
            counter = p.wire.send_index;
            q.drop_repetitive(0, counter);
        }
        assert_eq!(counter, B);
        assert!(q.is_empty());
    }

    #[test]
    fn no_match_returns_none_and_keeps_queue() {
        let mut q = RecvQueue::new();
        q.push(pending(0, 1, 1));
        assert!(q
            .take_first_matching(RecvSpec::any_source(9), |_, _, _| true)
            .is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn eligible_sources_lists_lanes_in_arrival_order() {
        let mut q = RecvQueue::with_ranks(4);
        q.push(pending(2, 1, 1));
        q.push(pending(0, 1, 2)); // FIFO-blocked
        q.push(pending(1, 1, 1));
        q.push(pending(2, 1, 2)); // behind 2's candidate
        let gate = |_src: Rank, idx: u64, _pb: &[u8]| idx == 1;
        assert_eq!(q.eligible_sources(RecvSpec::any(), gate), vec![2, 1]);
        // A sourced spec narrows to one lane.
        assert_eq!(q.eligible_sources(RecvSpec::from(1, 1), gate), vec![1]);
        assert!(q
            .eligible_sources(RecvSpec::from(0, 1), gate)
            .is_empty());
        // Whatever eligible_sources ranks first is what extraction takes.
        let taken = q.take_first_matching(RecvSpec::any(), gate).unwrap();
        assert_eq!(taken.src, 2);
    }

    #[test]
    fn tag_mismatch_ahead_of_candidate_does_not_hide_it() {
        let mut q = RecvQueue::new();
        // Lane 0: a tag-5 message first, then a tag-1 message. A
        // receive for tag 1 must see past the non-matching head.
        q.push(pending(0, 5, 1));
        q.push(pending(0, 1, 2));
        let gate = |_src: Rank, _idx: u64, _pb: &[u8]| true;
        assert_eq!(q.eligible_sources(RecvSpec::any_source(1), gate), vec![0]);
        let taken = q.take_first_matching(RecvSpec::any_source(1), gate).unwrap();
        assert_eq!(taken.wire.tag, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn candidate_heads_snapshots_then_take_exact_extracts() {
        let mut q = RecvQueue::with_ranks(3);
        q.push(pending(2, 1, 1));
        q.push(pending(0, 1, 2)); // FIFO-blocked
        q.push(pending(1, 1, 1));
        let gate = |_src: Rank, idx: u64, _pb: &[u8]| idx == 1;
        let heads = q.candidate_heads(RecvSpec::any(), gate);
        assert_eq!(
            heads.iter().map(|(s, i, _)| (*s, *i)).collect::<Vec<_>>(),
            vec![(2, 1), (1, 1)]
        );
        // Extraction by identity matches what the snapshot reported.
        let taken = q.take_exact(2, 1).unwrap();
        assert_eq!((taken.src, taken.wire.send_index), (2, 1));
        assert!(q.take_exact(2, 1).is_none());
        // The FIFO-blocked entry is untouched and still extractable.
        assert!(q.contains(0, 2));
        let taken = q.take_exact(0, 2).unwrap();
        assert_eq!(taken.src, 0);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn take_exact_reaches_mid_lane_entries() {
        let mut q = RecvQueue::new();
        q.push(pending(0, 5, 1));
        q.push(pending(0, 1, 2));
        q.push(pending(0, 1, 3));
        let taken = q.take_exact(0, 2).unwrap();
        assert_eq!(taken.wire.send_index, 2);
        assert_eq!(q.len(), 2);
        assert!(q.contains(0, 1));
        assert!(q.contains(0, 3));
        assert!(q.take_exact(7, 1).is_none());
    }

    #[test]
    fn global_arrival_order_breaks_cross_lane_ties() {
        let mut q = RecvQueue::new();
        // Interleave arrivals across three lanes; extraction must
        // follow push order exactly, not lane index order.
        for (src, idx) in [(2, 1), (0, 1), (1, 1), (2, 2), (0, 2)] {
            q.push(pending(src, 1, idx));
        }
        let mut order = Vec::new();
        while let Some(p) = q.take_first_matching(RecvSpec::any(), |_, _, _| true) {
            order.push((p.src, p.wire.send_index));
        }
        assert_eq!(order, vec![(2, 1), (0, 1), (1, 1), (2, 2), (0, 2)]);
    }
}
