//! The receiving queue (queue "B" of Fig. 4b): messages that have
//! arrived but have not yet been delivered to the application.
//!
//! A message waits here when (a) the application has not posted a
//! matching receive, (b) its per-sender FIFO predecessor has not been
//! delivered, or (c) the protocol's dependency gate says
//! [`DeliveryVerdict::Wait`] — during recovery, logged messages can
//! arrive in any order (§III.E) and this queue is where they sit until
//! deliverable.
//!
//! [`DeliveryVerdict::Wait`]: lclog_core::DeliveryVerdict

use crate::message::{AppWire, RecvSpec};
use lclog_core::Rank;

/// A queued, not-yet-delivered application message.
#[derive(Debug, Clone)]
pub struct Pending {
    /// Sending rank.
    pub src: Rank,
    /// Wire contents (tag, send_index, piggyback, payload).
    pub wire: AppWire,
}

/// FIFO-arrival buffer with matched extraction.
#[derive(Debug, Default)]
pub struct RecvQueue {
    items: Vec<Pending>,
}

impl RecvQueue {
    /// Empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when empty.
    #[allow(dead_code)] // keeps the len/is_empty pair complete
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Is a message with this identity already queued? (Duplicate
    /// resends during recovery are dropped at ingestion.)
    pub fn contains(&self, src: Rank, send_index: u64) -> bool {
        self.items
            .iter()
            .any(|p| p.src == src && p.wire.send_index == send_index)
    }

    /// Append an arrival.
    pub fn push(&mut self, pending: Pending) {
        self.items.push(pending);
    }

    /// Remove and return the first message (in arrival order) that
    /// matches `spec` *and* satisfies `gate`. `gate` receives
    /// `(src, send_index, piggyback)` and implements the FIFO +
    /// protocol delivery conditions.
    pub fn take_first_matching(
        &mut self,
        spec: RecvSpec,
        mut gate: impl FnMut(Rank, u64, &[u8]) -> bool,
    ) -> Option<Pending> {
        let pos = self.items.iter().position(|p| {
            spec.matches(p.src, p.wire.tag) && gate(p.src, p.wire.send_index, &p.wire.piggyback)
        })?;
        Some(self.items.remove(pos))
    }

    /// Compact view for diagnostics: `(src, send_index, tag)` per
    /// queued message, in arrival order.
    pub fn summary(&self) -> Vec<(Rank, u64, u32)> {
        self.items
            .iter()
            .map(|p| (p.src, p.wire.send_index, p.wire.tag))
            .collect()
    }

    /// Drop queued messages from `src` whose `send_index` is already
    /// covered by the receiver's delivery counter (repetitive messages
    /// that slipped in before the counter advanced).
    pub fn drop_repetitive(&mut self, src: Rank, upto: u64) {
        self.items
            .retain(|p| !(p.src == src && p.wire.send_index <= upto));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn pending(src: Rank, tag: u32, send_index: u64) -> Pending {
        Pending {
            src,
            wire: AppWire {
                tag,
                send_index,
                piggyback: Bytes::new(),
                needs_ack: false,
                data: Bytes::new(),
            },
        }
    }

    #[test]
    fn takes_in_arrival_order() {
        let mut q = RecvQueue::new();
        q.push(pending(0, 1, 1));
        q.push(pending(1, 1, 1));
        let taken = q.take_first_matching(RecvSpec::any(), |_, _, _| true).unwrap();
        assert_eq!(taken.src, 0);
        let taken = q.take_first_matching(RecvSpec::any(), |_, _, _| true).unwrap();
        assert_eq!(taken.src, 1);
        assert!(q.is_empty());
    }

    #[test]
    fn spec_filters_and_gate_blocks() {
        let mut q = RecvQueue::new();
        q.push(pending(0, 1, 2)); // FIFO gap: index 1 not delivered
        q.push(pending(2, 1, 1));
        // Gate admits only contiguous indices starting at 1.
        let gate = |_src: Rank, idx: u64, _pb: &[u8]| idx == 1;
        let taken = q.take_first_matching(RecvSpec::any_source(1), gate).unwrap();
        assert_eq!(taken.src, 2);
        // The gapped message stays queued.
        assert_eq!(q.len(), 1);
        assert!(q.contains(0, 2));
    }

    #[test]
    fn source_specific_spec_skips_other_senders() {
        let mut q = RecvQueue::new();
        q.push(pending(0, 7, 1));
        q.push(pending(1, 7, 1));
        let taken = q
            .take_first_matching(RecvSpec::from(1, 7), |_, _, _| true)
            .unwrap();
        assert_eq!(taken.src, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn drop_repetitive_prunes_stale_entries() {
        let mut q = RecvQueue::new();
        q.push(pending(0, 1, 1));
        q.push(pending(0, 1, 2));
        q.push(pending(1, 1, 1));
        q.drop_repetitive(0, 1);
        assert_eq!(q.len(), 2);
        assert!(!q.contains(0, 1));
        assert!(q.contains(0, 2));
        assert!(q.contains(1, 1));
    }

    #[test]
    fn no_match_returns_none_and_keeps_queue() {
        let mut q = RecvQueue::new();
        q.push(pending(0, 1, 1));
        assert!(q
            .take_first_matching(RecvSpec::any_source(9), |_, _, _| true)
            .is_none());
        assert_eq!(q.len(), 1);
    }
}
