//! Application-facing API: the [`RankApp`] trait parallel programs
//! implement and the [`RankCtx`] handle their steps receive.

use crate::engine::Engine;
use crate::fault::{Fault, StepStatus};
use crate::message::{AppMsg, RecvSpec};
use bytes::Bytes;
use lclog_core::Rank;
use lclog_wire::{Decode, Encode};

/// A parallel application runnable under rollback recovery.
///
/// The runtime executes `step` repeatedly on every rank, checkpointing
/// *between* steps, and — after a failure — re-executes from the last
/// checkpointed step. Correct recovery therefore requires the paper's
/// execution-model contract:
///
/// * `step` must be a deterministic function of `(state, received
///   messages)`;
/// * a receive posted with a specific [`RecvSpec::source`] expresses
///   order-*sensitive* delivery;
/// * a receive posted with `ANY_SOURCE` promises the program's outcome
///   does not depend on which matching message arrives first (the
///   observation of §II.C on which TDI's relaxation rests).
pub trait RankApp: Send + Sync + 'static {
    /// Serializable per-rank state; everything the computation needs
    /// to resume from a checkpoint.
    type State: Encode + Decode + Send;

    /// Deterministic initial state of `rank` in an `n`-rank run.
    fn init(&self, rank: Rank, n: usize) -> Self::State;

    /// Execute one application step.
    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut Self::State) -> Result<StepStatus, Fault>;

    /// A verification digest of the final state: identical across
    /// fault-free and recovered runs (the reproduction's central
    /// correctness check).
    fn digest(&self, state: &Self::State) -> u64;
}

/// The runtime handle passed to [`RankApp::step`].
pub struct RankCtx<'a> {
    engine: &'a Engine,
    step: u64,
}

impl<'a> RankCtx<'a> {
    pub(crate) fn new(engine: &'a Engine, step: u64) -> Self {
        RankCtx { engine, step }
    }

    pub(crate) fn engine(&self) -> &'a Engine {
        self.engine
    }

    /// This process's rank.
    pub fn rank(&self) -> Rank {
        self.engine.me()
    }

    /// Number of application ranks.
    pub fn n(&self) -> usize {
        self.engine.n()
    }

    /// The current application step index.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Send `data` to `dst` under `tag`. In blocking mode this may
    /// wait for the receiver (Fig. 4a); in non-blocking mode it
    /// returns immediately (Fig. 4b).
    pub fn send(&mut self, dst: Rank, tag: u32, data: &[u8]) -> Result<(), Fault> {
        self.engine.send(dst, tag, Bytes::copy_from_slice(data))
    }

    /// Zero-copy variant of [`RankCtx::send`].
    pub fn send_bytes(&mut self, dst: Rank, tag: u32, data: Bytes) -> Result<(), Fault> {
        self.engine.send(dst, tag, data)
    }

    /// Send an [`Encode`]-able value.
    pub fn send_value<T: Encode>(&mut self, dst: Rank, tag: u32, value: &T) -> Result<(), Fault> {
        self.engine
            .send(dst, tag, Bytes::from(lclog_wire::encode_to_vec(value)))
    }

    /// Block until a message matching `spec` is deliverable.
    pub fn recv(&mut self, spec: RecvSpec) -> Result<AppMsg, Fault> {
        self.engine.recv(spec)
    }

    /// Receive and decode a value. A payload that does not decode as
    /// `T` is wire input this incarnation cannot trust — it surfaces
    /// as [`Fault::Desync`] (crash-and-rebuild through the rollback
    /// path) rather than a process abort.
    pub fn recv_value<T: Decode>(&mut self, spec: RecvSpec) -> Result<(Rank, T), Fault> {
        let msg = self.engine.recv(spec)?;
        match lclog_wire::decode_from_slice(&msg.data) {
            Ok(value) => Ok((msg.src, value)),
            Err(_) => Err(Fault::Desync),
        }
    }
}
