//! The tracking layer: the pluggable [`LoggingProtocol`] box and
//! nothing else — the piggyback construction/merge the paper's whole
//! argument is about (TDI makes *this* layer cheap; Algorithm 1
//! lines 8–11 on send, 15–31 on deliver).
//!
//! Keeping the protocol object in its own lock means the per-message
//! tracking cost — `on_send` piggyback construction, the delivery
//! gate, `on_deliver` merge — is paid without holding the delivery
//! buffer, the reliability channels, or the recovery bookkeeping.
//! [`TrackingStats`] lives here too because every counter it holds is
//! incremented next to a protocol call.

use crate::clock::Clock;
use lclog_core::Rank;
use lclog_core::{LoggingProtocol, ProtocolError, SendArtifacts, TrackingStats};

/// Protocol box + the statistics measured around its calls.
pub(crate) struct Tracking {
    pub protocol: Box<dyn LoggingProtocol>,
    pub stats: TrackingStats,
    /// Time source for the tracking-cost accounting. Under a virtual
    /// clock the measured cost is zero — deterministically so, which
    /// is what the schedule explorer needs from the stats.
    clock: Clock,
}

impl Tracking {
    pub fn new(protocol: Box<dyn LoggingProtocol>, clock: Clock) -> Self {
        Tracking {
            protocol,
            stats: TrackingStats::default(),
            clock,
        }
    }

    /// Timed `on_send` (Algorithm 1 lines 8–11): builds the piggyback
    /// and accounts the tracking cost.
    pub fn on_send(&mut self, dst: Rank, send_index: u64) -> SendArtifacts {
        let t0 = self.clock.now();
        let artifacts = self.protocol.on_send(dst, send_index);
        self.stats.track_send_ns += self.clock.now().saturating_duration_since(t0).as_nanos() as u64;
        self.stats.sends += 1;
        self.stats.piggyback_ids += artifacts.id_count;
        self.stats.piggyback_bytes += artifacts.piggyback.len() as u64;
        artifacts
    }

    /// Timed `on_deliver` (lines 15–31): merges the piggyback and
    /// accounts the tracking cost. The delivery gate must already have
    /// approved this message — but gate and merge can still disagree
    /// (a poisoned piggyback a gate that does not decode it waved
    /// through, or stale state admitted across an incarnation
    /// boundary). That is a recoverable single-rank fault, not a
    /// process abort: the error is returned so the kernel can fault
    /// this rank and let it rebuild through the rollback path.
    pub fn on_deliver(
        &mut self,
        src: Rank,
        send_index: u64,
        piggyback: &[u8],
    ) -> Result<(), ProtocolError> {
        let t0 = self.clock.now();
        self.protocol.on_deliver(src, send_index, piggyback)?;
        self.stats.track_deliver_ns +=
            self.clock.now().saturating_duration_since(t0).as_nanos() as u64;
        self.stats.delivers += 1;
        Ok(())
    }

    /// The stats snapshot reported outward: the runtime-side counters
    /// with the protocol's frame-level codec counters overlaid (both
    /// are cumulative over this incarnation, so assignment — not
    /// addition — is the correct overlay).
    pub fn snapshot_stats(&self) -> TrackingStats {
        let mut stats = self.stats.clone();
        if let Some(fs) = self.protocol.frame_stats() {
            stats.delta_frames = fs.delta_frames;
            stats.full_frames = fs.full_frames;
            stats.resync_requests = fs.resync_requests;
        }
        stats
    }
}
