//! # lclog-runtime
//!
//! An MPI-like rank runtime with rollback-recovery fault tolerance —
//! the reproduction's stand-in for MPICH + the paper's WINDAR toolkit.
//!
//! Each rank of a parallel application runs as an OS thread against a
//! [`lclog_simnet::SimNet`] fabric. Between the application and the
//! fabric sits the rollback-recovery layer of the paper's Algorithm 1:
//!
//! * **sender-based message logging** — every sent payload, together
//!   with its protocol piggyback, is retained in the sender's volatile
//!   [`SenderLog`] until the receiver's checkpoint covers it
//!   (`CHECKPOINT_ADVANCE` garbage collection);
//! * **independent checkpointing** — each rank serializes application
//!   state, protocol state, counters, and its log to stable storage on
//!   its own schedule;
//! * **failure and recovery** — a killed rank loses everything
//!   volatile; its incarnation restores the last checkpoint, broadcasts
//!   `ROLLBACK(last_deliver_index)`, and rolls forward from survivors'
//!   log resends while regenerating its own sends (suppressed or
//!   discarded as repetitive exactly as §III.C.3 describes);
//! * **pluggable dependency tracking** — the
//!   [`lclog_core::LoggingProtocol`] instance (TDI, TAG or TEL) decides
//!   what is piggybacked and when queued messages may be delivered.
//!
//! Two communication engines reproduce Fig. 4:
//!
//! * [`CommMode::Blocking`] (Fig. 4a) — the application thread itself
//!   performs sends (waiting for the receiver's acknowledgement beyond
//!   the eager threshold) and only services incoming traffic when it
//!   enters a runtime call, so one process's failure stalls its peers;
//! * [`CommMode::NonBlocking`] (Fig. 4b) — a dedicated communication
//!   thread drains both buffer queues, so computation, sending and
//!   receiving proceed concurrently and recovery traffic is serviced
//!   immediately.
//!
//! The [`Cluster`] harness ties it together: it spawns rank threads,
//! injects failures from a [`FailurePlan`], respawns incarnations, runs
//! the TEL event-logger service, and collects per-rank digests and
//! tracking statistics.

#![warn(missing_docs)]

pub mod backoff;
mod clock;
mod cluster;
pub mod collectives;
mod config;
mod delivery;
mod detector;
mod engine;
pub mod events;
mod fault;
mod kernel;
pub mod lockcheck;
mod log;
mod message;
mod process;
mod recovery;
mod recvq;
mod reliability;
pub mod replicator;
mod ring;
mod service;
mod tasks;
mod tracking;
mod transport;

pub use cluster::{
    Cluster, ClusterConfig, DetectorReport, FailurePlan, Kill, RemoteConfig, RunReport,
    StorageKind,
};
pub use clock::Clock;
pub use events::{Event, EventKind, EventSink};
pub use config::{CheckpointPolicy, CommMode, EngineMode, RunConfig};
pub use detector::DetectorConfig;
pub use fault::{Fault, StepStatus};
pub use kernel::{CheckpointImage, Kernel, KernelSnapshot};
pub use recovery::RecoveryPhase;
pub use log::{LogEntry, SenderLog};
pub use message::{
    AppMsg, AppWire, CkptAdvanceWire, RecvSpec, ResponseWire, RollbackWire, SuspectWire, WireMsg,
    ANY_SOURCE, ANY_TAG,
};
pub use process::{RankApp, RankCtx};
pub use tasks::{run_tasks, BlockingTaskApp, TaskApp, TaskCtx, TaskJob, TaskPoll, TasksEnv};
pub use recvq::{Pending, RecvQueue};
pub use replicator::{Replicator, ReplicatorConfig, ReplicatorStats};
pub use transport::{payload_is_app_frame, payload_is_data_frame, DataPlaneStats};

/// Rank identifier (re-exported from the protocol layer).
pub use lclog_core::Rank;

/// Certified membership view (re-exported from the protocol layer).
pub use lclog_core::MembershipView;

/// The fabric rank used by the TEL event-logger service: always
/// allocated as slot `n` of an `n`-process application.
pub fn logger_rank(n: usize) -> Rank {
    n
}
