//! The two communication engines of Fig. 4.
//!
//! **Blocking** (Fig. 4a): the application thread itself moves every
//! byte. Sends above the eager threshold wait for the receiver's
//! ingestion acknowledgement, and incoming traffic — application
//! messages, checkpoint notices, and peers' recovery requests — is
//! serviced only while the application sits inside a runtime call.
//! A failed peer therefore stalls its neighbours, which is exactly the
//! effect Fig. 8 quantifies.
//!
//! **Non-blocking** (Fig. 4b): a dedicated communication thread drains
//! the fabric continuously (the receiving queue of the paper's scheme;
//! the fabric channel itself plays the role of the sending queue "A",
//! since handing an envelope to the fabric never blocks). Application
//! sends return immediately and recovery traffic is serviced even
//! while the application computes.

use crate::backoff::Backoff;
use crate::config::CommMode;
use crate::fault::Fault;
use crate::kernel::Kernel;
use crate::message::{AppMsg, RecvSpec};
use bytes::Bytes;
use lclog_core::{Rank, TrackingStats};
use lclog_simnet::{Endpoint, RecvError, SimNet};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Shared engine state.
struct Shared {
    kernel: Mutex<Kernel>,
    cv: Condvar,
    /// Set when this incarnation is dead (crashed) — runtime calls
    /// fail with [`Fault::Killed`].
    dead: AtomicBool,
    /// Set by the cluster when the whole run is over (or aborted) —
    /// runtime calls fail with [`Fault::Shutdown`].
    shutdown: Arc<AtomicBool>,
}

/// One rank incarnation's communication engine.
pub struct Engine {
    shared: Arc<Shared>,
    /// Owned by the app thread in blocking mode; `None` when the comm
    /// thread owns it.
    endpoint: Option<Endpoint>,
    comm: Option<JoinHandle<()>>,
    net: SimNet,
    me: Rank,
    mode: CommMode,
    poll: Duration,
    retry: Duration,
}

impl Engine {
    /// Wrap a kernel and start the engine for `mode`.
    pub fn new(kernel: Kernel, endpoint: Endpoint, shutdown: Arc<AtomicBool>) -> Self {
        let me = kernel.me();
        let mode = kernel.cfg().comm;
        let poll = kernel.cfg().poll_interval;
        let retry = kernel.cfg().retry_interval;
        let net = kernel_net(&kernel);
        let shared = Arc::new(Shared {
            kernel: Mutex::new(kernel),
            cv: Condvar::new(),
            dead: AtomicBool::new(false),
            shutdown,
        });
        let (endpoint, comm) = match mode {
            CommMode::Blocking { .. } => (Some(endpoint), None),
            CommMode::NonBlocking => {
                let handle = spawn_comm_thread(Arc::clone(&shared), endpoint, poll);
                (None, Some(handle))
            }
        };
        Engine {
            shared,
            endpoint,
            comm,
            net,
            me,
            mode,
            poll,
            retry,
        }
    }

    /// This rank.
    pub fn me(&self) -> Rank {
        self.me
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.shared.kernel.lock().n()
    }

    /// Poll-interval schedule for wait loops: start fine-grained so an
    /// active channel answers quickly, back off to `poll_interval`
    /// when idle.
    fn poll_backoff(&self) -> Backoff {
        Backoff::new((self.poll / 8).max(Duration::from_micros(1)), self.poll)
    }

    fn check_live(&self) -> Result<(), Fault> {
        if self.shared.dead.load(Ordering::Relaxed) {
            return Err(Fault::Killed);
        }
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return Err(Fault::Shutdown);
        }
        Ok(())
    }

    /// Drain the fabric inbox into the kernel (blocking mode only —
    /// the app thread owns the endpoint).
    fn pump(&self) -> Result<(), Fault> {
        let ep = self.endpoint.as_ref().expect("pump in blocking mode");
        loop {
            match ep.try_recv() {
                Ok(env) => {
                    self.shared.kernel.lock().ingest(env);
                }
                Err(RecvError::Empty) => break,
                Err(RecvError::Dead) => {
                    self.shared.dead.store(true, Ordering::Relaxed);
                    return Err(Fault::Killed);
                }
                Err(RecvError::Timeout) => unreachable!("try_recv never times out"),
            }
        }
        self.shared.kernel.lock().tick();
        Ok(())
    }

    /// Send an application message (both modes).
    pub fn send(&self, dst: Rank, tag: u32, data: Bytes) -> Result<(), Fault> {
        self.check_live()?;
        match self.mode {
            CommMode::NonBlocking => {
                let mut kernel = self.shared.kernel.lock();
                // Pessimistic logging: hold the send until the logger
                // has acknowledged our delivery determinants (the comm
                // thread ingests the ack and notifies).
                let mut backoff = self.poll_backoff();
                while !kernel.send_ready() {
                    if self.shared.dead.load(Ordering::Relaxed) {
                        return Err(Fault::Killed);
                    }
                    if self.shared.shutdown.load(Ordering::Relaxed) {
                        return Err(Fault::Shutdown);
                    }
                    self.shared.cv.wait_for(&mut kernel, backoff.next_wait());
                }
                kernel.app_send(dst, tag, data, false);
                Ok(())
            }
            CommMode::Blocking { eager_threshold } => {
                self.pump()?;
                // Pessimistic send gate: service the inbox until the
                // logger ack arrives.
                let mut backoff = self.poll_backoff();
                loop {
                    if self.shared.kernel.lock().send_ready() {
                        break;
                    }
                    self.check_live()?;
                    let ep = self.endpoint.as_ref().expect("blocking mode endpoint");
                    match ep.recv_timeout(backoff.next_wait()) {
                        Ok(env) => {
                            self.shared.kernel.lock().ingest(env);
                            backoff.reset();
                        }
                        Err(RecvError::Timeout) => {
                            self.shared.kernel.lock().tick();
                        }
                        Err(RecvError::Dead) => {
                            self.shared.dead.store(true, Ordering::Relaxed);
                            return Err(Fault::Killed);
                        }
                        Err(RecvError::Empty) => unreachable!(),
                    }
                }
                let needs_ack = data.len() > eager_threshold;
                let (send_index, transmitted) = self
                    .shared
                    .kernel
                    .lock()
                    .app_send(dst, tag, data, needs_ack);
                if !(needs_ack && transmitted) {
                    return Ok(());
                }
                // Rendezvous: wait for the receiver's ingestion ack,
                // servicing our own inbox meanwhile (a blocked sender
                // must still answer ROLLBACKs or the system deadlocks).
                let ep = self.endpoint.as_ref().expect("blocking mode endpoint");
                let mut last_resend = Instant::now();
                let mut backoff = self.poll_backoff();
                loop {
                    self.check_live()?;
                    self.pump()?;
                    {
                        let kernel = self.shared.kernel.lock();
                        if kernel.acked(dst) >= send_index {
                            return Ok(());
                        }
                        // The reliability layer has written the peer
                        // off: fail the send instead of spinning on a
                        // rendezvous that can never complete.
                        if kernel.peer_unreachable(dst) {
                            return Err(Fault::Unreachable(dst));
                        }
                    }
                    match ep.recv_timeout(backoff.next_wait()) {
                        Ok(env) => {
                            self.shared.kernel.lock().ingest(env);
                            backoff.reset();
                        }
                        Err(RecvError::Timeout) => {}
                        Err(RecvError::Dead) => {
                            self.shared.dead.store(true, Ordering::Relaxed);
                            return Err(Fault::Killed);
                        }
                        Err(RecvError::Empty) => unreachable!(),
                    }
                    if last_resend.elapsed() >= self.retry {
                        // The receiver may have died and respawned; its
                        // incarnation will ack (or discard-and-ack) the
                        // retransmission.
                        self.shared.kernel.lock().resend_unacked(dst, send_index);
                        last_resend = Instant::now();
                    }
                }
            }
        }
    }

    /// Blocking receive matching `spec` (both modes).
    pub fn recv(&self, spec: RecvSpec) -> Result<AppMsg, Fault> {
        match self.mode {
            CommMode::Blocking { .. } => {
            let started = Instant::now();
            let mut dumped = false;
            let mut backoff = self.poll_backoff();
            loop {
                self.check_live()?;
                self.pump()?;
                if let Some(msg) = self.shared.kernel.lock().try_deliver(spec) {
                    return Ok(msg);
                }
                if !dumped && started.elapsed() > Duration::from_secs(5) && std::env::var_os("LCLOG_TRACE").is_some() {
                    dumped = true;
                    eprintln!("[stall] rank {} recv {:?}: {:?}", self.me, spec, self.shared.kernel.lock());
                }
                let ep = self.endpoint.as_ref().expect("blocking mode endpoint");
                match ep.recv_timeout(backoff.next_wait()) {
                    Ok(env) => {
                        self.shared.kernel.lock().ingest(env);
                        backoff.reset();
                    }
                    Err(RecvError::Timeout) => {}
                    Err(RecvError::Dead) => {
                        self.shared.dead.store(true, Ordering::Relaxed);
                        return Err(Fault::Killed);
                    }
                    Err(RecvError::Empty) => unreachable!(),
                }
            }
            }
            CommMode::NonBlocking => {
                let started = Instant::now();
                let mut dumped = false;
                let mut backoff = self.poll_backoff();
                let mut kernel = self.shared.kernel.lock();
                loop {
                    if self.shared.dead.load(Ordering::Relaxed) {
                        return Err(Fault::Killed);
                    }
                    if self.shared.shutdown.load(Ordering::Relaxed) {
                        return Err(Fault::Shutdown);
                    }
                    if let Some(msg) = kernel.try_deliver(spec) {
                        return Ok(msg);
                    }
                    if !dumped
                        && started.elapsed() > Duration::from_secs(5)
                        && std::env::var_os("LCLOG_TRACE").is_some()
                    {
                        dumped = true;
                        eprintln!("[stall] rank {} recv {:?}: {:?}", self.me, spec, &*kernel);
                    }
                    // Releases the lock while parked; the comm thread
                    // notifies after every ingestion (which resets the
                    // schedule to its fine-grained start).
                    if self
                        .shared
                        .cv
                        .wait_for(&mut kernel, backoff.next_wait())
                        .timed_out()
                    {
                        continue;
                    }
                    backoff.reset();
                }
            }
        }
    }

    /// Take a checkpoint if the policy says one is due after `step`.
    pub fn maybe_checkpoint(&self, app_state: impl FnOnce() -> Vec<u8>, step: u64) -> bool {
        let mut kernel = self.shared.kernel.lock();
        if kernel.checkpoint_due(step) {
            kernel.do_checkpoint(app_state(), step);
            true
        } else {
            false
        }
    }

    /// Unconditional checkpoint after `step`.
    pub fn checkpoint_now(&self, app_state: Vec<u8>, step: u64) {
        self.shared.kernel.lock().do_checkpoint(app_state, step);
    }

    /// Simulate a crash of this incarnation: sever the fabric endpoint
    /// (in-flight and queued messages are lost) and poison all runtime
    /// calls. Volatile kernel state dies with the thread.
    pub fn crash(&mut self) {
        self.net.kill(self.me);
        self.shared.dead.store(true, Ordering::Relaxed);
        self.shared.cv.notify_all();
        if let Some(handle) = self.comm.take() {
            let _ = handle.join();
        }
    }

    /// After the application finishes, keep servicing peers (log
    /// resends for late failures, acks, checkpoint notices) until the
    /// whole cluster is done.
    pub fn serve_until_shutdown(&self) {
        let mut backoff = self.poll_backoff();
        while !self.shared.shutdown.load(Ordering::Relaxed) {
            if self.shared.dead.load(Ordering::Relaxed) {
                return;
            }
            match self.mode {
                CommMode::Blocking { .. } => {
                    if self.pump().is_err() {
                        return;
                    }
                    let ep = self.endpoint.as_ref().expect("blocking mode endpoint");
                    match ep.recv_timeout(backoff.next_wait()) {
                        Ok(env) => {
                            self.shared.kernel.lock().ingest(env);
                            backoff.reset();
                        }
                        Err(RecvError::Timeout) => {}
                        Err(_) => return,
                    }
                }
                CommMode::NonBlocking => {
                    // The comm thread does the serving; this thread
                    // only waits for the shutdown flag.
                    std::thread::sleep(backoff.next_wait());
                }
            }
        }
    }

    /// Snapshot of the kernel's tracking statistics.
    pub fn stats(&self) -> TrackingStats {
        self.shared.kernel.lock().stats().clone()
    }

}

impl Drop for Engine {
    fn drop(&mut self) {
        // Stop the comm thread; without marking dead it would keep
        // polling a live endpoint forever.
        self.shared.dead.store(true, Ordering::Relaxed);
        self.shared.cv.notify_all();
        if let Some(handle) = self.comm.take() {
            let _ = handle.join();
        }
    }
}

fn spawn_comm_thread(shared: Arc<Shared>, endpoint: Endpoint, poll: Duration) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("lclog-comm-{}", endpoint.rank()))
        .spawn(move || {
            let mut backoff = Backoff::new((poll / 8).max(Duration::from_micros(1)), poll);
            loop {
            if shared.dead.load(Ordering::Relaxed) || shared.shutdown.load(Ordering::Relaxed) {
                return;
            }
            match endpoint.recv_timeout(backoff.next_wait()) {
                Ok(env) => {
                    backoff.reset();
                    let mut kernel = shared.kernel.lock();
                    kernel.ingest(env);
                    // Drain whatever else is queued before waking the
                    // app thread.
                    while let Ok(env) = endpoint.try_recv() {
                        kernel.ingest(env);
                    }
                    kernel.tick();
                    drop(kernel);
                    shared.cv.notify_all();
                }
                Err(RecvError::Timeout) => {
                    shared.kernel.lock().tick();
                    shared.cv.notify_all();
                }
                Err(RecvError::Dead) => {
                    shared.dead.store(true, Ordering::Relaxed);
                    shared.cv.notify_all();
                    return;
                }
                Err(RecvError::Empty) => unreachable!(),
            }
            }
        })
        .expect("spawn comm thread")
}

/// Extract the fabric handle before the kernel moves into the mutex.
fn kernel_net(kernel: &Kernel) -> SimNet {
    kernel.net_handle()
}
