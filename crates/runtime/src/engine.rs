//! The two communication engines of Fig. 4.
//!
//! **Blocking** (Fig. 4a): the application thread itself moves every
//! byte. Sends above the eager threshold wait for the receiver's
//! ingestion acknowledgement, and incoming traffic — application
//! messages, checkpoint notices, and peers' recovery requests — is
//! serviced only while the application sits inside a runtime call.
//! A failed peer therefore stalls its neighbours, which is exactly the
//! effect Fig. 8 quantifies.
//!
//! **Non-blocking** (Fig. 4b): a dedicated communication thread drains
//! the fabric continuously (the receiving queue of the paper's scheme;
//! the fabric channel itself plays the role of the sending queue "A",
//! since handing an envelope to the fabric never blocks). Application
//! sends return immediately and recovery traffic is serviced even
//! while the application computes.
//!
//! The kernel is `Sync` (its layers carry their own locks), so both
//! threads call it directly — the comm thread's `ingest_batch` and the
//! app thread's `try_deliver`/`app_send` run concurrently. The only
//! coordination between them is the [`Notifier`]: an eventcount the
//! comm thread bumps after every ingestion batch so the app thread can
//! sleep without a missed-wakeup race (read the generation *before*
//! checking the condition; wait only past that generation).

use crate::backoff::Backoff;
use crate::config::CommMode;
use crate::fault::Fault;
use crate::kernel::{Kernel, KernelSnapshot};
use crate::message::{AppMsg, RecvSpec};
use bytes::Bytes;
use lclog_core::Rank;
use lclog_simnet::{Endpoint, RecvError, SimNet};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Eventcount: "something may have changed" edges from the comm
/// thread to the app thread. Waiters snapshot [`Notifier::generation`]
/// *before* testing their condition and then sleep only
/// [`Notifier::wait_past`] that snapshot — a notification between test
/// and sleep makes the sleep return immediately, so no edge is lost.
struct Notifier {
    gen: Mutex<u64>,
    cv: Condvar,
}

impl Notifier {
    fn new() -> Self {
        Notifier {
            gen: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Current generation; pass to [`Notifier::wait_past`].
    fn generation(&self) -> u64 {
        *self.gen.lock()
    }

    /// Signal all waiters that state changed.
    fn notify(&self) {
        *self.gen.lock() += 1;
        self.cv.notify_all();
    }

    /// Sleep until the generation moves past `seen` (or `timeout`).
    /// Returns true when it timed out with no progress observed.
    fn wait_past(&self, seen: u64, timeout: Duration) -> bool {
        let mut gen = self.gen.lock();
        if *gen != seen {
            return false;
        }
        self.cv.wait_for(&mut gen, timeout).timed_out()
    }
}

/// Shared engine state.
struct Shared {
    kernel: Kernel,
    notifier: Notifier,
    /// Set when this incarnation is dead (crashed) — runtime calls
    /// fail with [`Fault::Killed`].
    dead: AtomicBool,
    /// Set by the cluster when the whole run is over (or aborted) —
    /// runtime calls fail with [`Fault::Shutdown`].
    shutdown: Arc<AtomicBool>,
}

/// One rank incarnation's communication engine.
pub struct Engine {
    shared: Arc<Shared>,
    /// Owned by the app thread in blocking mode; `None` when the comm
    /// thread owns it.
    endpoint: Option<Endpoint>,
    comm: Option<JoinHandle<()>>,
    net: SimNet,
    me: Rank,
    mode: CommMode,
    poll: Duration,
    retry: Duration,
}

impl Engine {
    /// Wrap a kernel and start the engine for `mode`.
    pub fn new(kernel: Kernel, endpoint: Endpoint, shutdown: Arc<AtomicBool>) -> Self {
        let me = kernel.me();
        let mode = kernel.cfg().comm;
        let poll = kernel.cfg().poll_interval;
        let retry = kernel.cfg().retry_interval;
        let net = kernel.net_handle();
        let shared = Arc::new(Shared {
            kernel,
            notifier: Notifier::new(),
            dead: AtomicBool::new(false),
            shutdown,
        });
        let (endpoint, comm) = match mode {
            CommMode::Blocking { .. } => (Some(endpoint), None),
            CommMode::NonBlocking => {
                let handle = spawn_comm_thread(Arc::clone(&shared), endpoint, poll);
                (None, Some(handle))
            }
        };
        Engine {
            shared,
            endpoint,
            comm,
            net,
            me,
            mode,
            poll,
            retry,
        }
    }

    /// This rank.
    pub fn me(&self) -> Rank {
        self.me
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.shared.kernel.n()
    }

    /// Poll-interval schedule for wait loops: start fine-grained so an
    /// active channel answers quickly, back off to `poll_interval`
    /// when idle.
    fn poll_backoff(&self) -> Backoff {
        Backoff::new((self.poll / 8).max(Duration::from_micros(1)), self.poll)
    }

    fn check_live(&self) -> Result<(), Fault> {
        if self.shared.dead.load(Ordering::Relaxed) {
            return Err(Fault::Killed);
        }
        if self.shared.kernel.is_fenced() {
            return Err(Fault::Fenced);
        }
        if self.shared.kernel.is_desynced() {
            return Err(Fault::Desync);
        }
        if self.shared.shutdown.load(Ordering::Relaxed) {
            return Err(Fault::Shutdown);
        }
        Ok(())
    }

    /// True once a membership view declared this live incarnation dead
    /// (a false suspicion caught it). The harness treats it as a crash.
    pub fn is_fenced(&self) -> bool {
        self.shared.kernel.is_fenced()
    }

    /// Drain the fabric inbox into the kernel (blocking mode only —
    /// the app thread owns the endpoint). Envelopes are handed to the
    /// kernel as one batch, so staged app wires are admitted under a
    /// single delivery acquisition and acks coalesce to one cumulative
    /// frame per peer.
    fn pump(&self) -> Result<(), Fault> {
        let ep = self.endpoint.as_ref().expect("pump in blocking mode");
        let mut batch = Vec::new();
        loop {
            match ep.try_recv() {
                Ok(env) => batch.push(env),
                Err(RecvError::Empty) => break,
                Err(RecvError::Dead) => {
                    self.shared.dead.store(true, Ordering::Relaxed);
                    return Err(Fault::Killed);
                }
                Err(RecvError::Timeout) => unreachable!("try_recv never times out"),
            }
        }
        if !batch.is_empty() {
            self.shared.kernel.ingest_batch(batch);
        }
        self.shared.kernel.tick();
        Ok(())
    }

    /// Send an application message (both modes).
    pub fn send(&self, dst: Rank, tag: u32, data: Bytes) -> Result<(), Fault> {
        self.check_live()?;
        let kernel = &self.shared.kernel;
        match self.mode {
            CommMode::NonBlocking => {
                // Pessimistic logging: hold the send until the logger
                // has acknowledged our delivery determinants (the comm
                // thread ingests the ack and notifies).
                let mut backoff = self.poll_backoff();
                loop {
                    let seen = self.shared.notifier.generation();
                    if kernel.send_ready() {
                        break;
                    }
                    self.check_live()?;
                    self.shared.notifier.wait_past(seen, backoff.next_wait());
                }
                kernel.app_send(dst, tag, data, false);
                Ok(())
            }
            CommMode::Blocking { eager_threshold } => {
                self.pump()?;
                // Pessimistic send gate: service the inbox until the
                // logger ack arrives.
                let mut backoff = self.poll_backoff();
                loop {
                    if kernel.send_ready() {
                        break;
                    }
                    self.check_live()?;
                    let ep = self.endpoint.as_ref().expect("blocking mode endpoint");
                    match ep.recv_timeout(backoff.next_wait()) {
                        Ok(env) => {
                            kernel.ingest(env);
                            backoff.reset();
                        }
                        Err(RecvError::Timeout) => kernel.tick(),
                        Err(RecvError::Dead) => {
                            self.shared.dead.store(true, Ordering::Relaxed);
                            return Err(Fault::Killed);
                        }
                        Err(RecvError::Empty) => unreachable!(),
                    }
                }
                let needs_ack = data.len() > eager_threshold;
                let (send_index, transmitted) = kernel.app_send(dst, tag, data, needs_ack);
                if !(needs_ack && transmitted) {
                    return Ok(());
                }
                // Rendezvous: wait for the receiver's ingestion ack,
                // servicing our own inbox meanwhile (a blocked sender
                // must still answer ROLLBACKs or the system deadlocks).
                let ep = self.endpoint.as_ref().expect("blocking mode endpoint");
                let mut last_resend = Instant::now();
                let mut backoff = self.poll_backoff();
                loop {
                    self.check_live()?;
                    self.pump()?;
                    let (acked, unreachable) = kernel.rendezvous_progress(dst);
                    if acked >= send_index {
                        return Ok(());
                    }
                    // The reliability layer has written the peer off:
                    // fail the send instead of spinning on a rendezvous
                    // that can never complete.
                    if unreachable {
                        return Err(Fault::Unreachable(dst));
                    }
                    match ep.recv_timeout(backoff.next_wait()) {
                        Ok(env) => {
                            kernel.ingest(env);
                            backoff.reset();
                        }
                        Err(RecvError::Timeout) => {}
                        Err(RecvError::Dead) => {
                            self.shared.dead.store(true, Ordering::Relaxed);
                            return Err(Fault::Killed);
                        }
                        Err(RecvError::Empty) => unreachable!(),
                    }
                    if last_resend.elapsed() >= self.retry {
                        // The receiver may have died and respawned; its
                        // incarnation will ack (or discard-and-ack) the
                        // retransmission.
                        kernel.resend_unacked(dst, send_index);
                        last_resend = Instant::now();
                    }
                }
            }
        }
    }

    /// Blocking receive matching `spec` (both modes).
    pub fn recv(&self, spec: RecvSpec) -> Result<AppMsg, Fault> {
        let kernel = &self.shared.kernel;
        let started = Instant::now();
        let mut dumped = false;
        let mut backoff = self.poll_backoff();
        match self.mode {
            CommMode::Blocking { .. } => loop {
                self.check_live()?;
                self.pump()?;
                if let Some(msg) = kernel.try_deliver(spec) {
                    return Ok(msg);
                }
                if !dumped
                    && started.elapsed() > Duration::from_secs(5)
                    && std::env::var_os("LCLOG_TRACE").is_some()
                {
                    dumped = true;
                    eprintln!("[stall] rank {} recv {:?}: {:?}", self.me, spec, kernel);
                }
                let ep = self.endpoint.as_ref().expect("blocking mode endpoint");
                match ep.recv_timeout(backoff.next_wait()) {
                    Ok(env) => {
                        kernel.ingest(env);
                        backoff.reset();
                    }
                    Err(RecvError::Timeout) => {}
                    Err(RecvError::Dead) => {
                        self.shared.dead.store(true, Ordering::Relaxed);
                        return Err(Fault::Killed);
                    }
                    Err(RecvError::Empty) => unreachable!(),
                }
            },
            CommMode::NonBlocking => loop {
                self.check_live()?;
                // Generation first, condition second: an ingestion
                // that lands between the two makes wait_past return
                // immediately instead of being missed.
                let seen = self.shared.notifier.generation();
                if let Some(msg) = kernel.try_deliver(spec) {
                    return Ok(msg);
                }
                if !dumped
                    && started.elapsed() > Duration::from_secs(5)
                    && std::env::var_os("LCLOG_TRACE").is_some()
                {
                    dumped = true;
                    eprintln!("[stall] rank {} recv {:?}: {:?}", self.me, spec, kernel);
                }
                if !self.shared.notifier.wait_past(seen, backoff.next_wait()) {
                    backoff.reset();
                }
            },
        }
    }

    /// Non-blocking receive: deliver the first queued message matching
    /// `spec` if its dependency gate opens right now, else `Ok(None)`.
    /// The poll-style primitive cooperative task engines are built on —
    /// a task must never park its worker thread in [`Engine::recv`].
    pub fn try_recv(&self, spec: RecvSpec) -> Result<Option<AppMsg>, Fault> {
        self.check_live()?;
        if matches!(self.mode, CommMode::Blocking { .. }) {
            self.pump()?;
        }
        Ok(self.shared.kernel.try_deliver(spec))
    }

    /// Take a checkpoint if the policy says one is due after `step`.
    pub fn maybe_checkpoint(&self, app_state: impl FnOnce() -> Vec<u8>, step: u64) -> bool {
        let kernel = &self.shared.kernel;
        if kernel.checkpoint_due(step) {
            kernel.do_checkpoint(app_state(), step);
            true
        } else {
            false
        }
    }

    /// Unconditional checkpoint after `step`.
    pub fn checkpoint_now(&self, app_state: Vec<u8>, step: u64) {
        self.shared.kernel.do_checkpoint(app_state, step);
    }

    /// Simulate a crash of this incarnation: sever the fabric endpoint
    /// (in-flight and queued messages are lost) and poison all runtime
    /// calls. Volatile kernel state dies with the thread.
    pub fn crash(&mut self) {
        self.net.kill(self.me);
        self.shared.dead.store(true, Ordering::Relaxed);
        self.shared.notifier.notify();
        if let Some(handle) = self.comm.take() {
            let _ = handle.join();
        }
    }

    /// After the application finishes, keep servicing peers (log
    /// resends for late failures, acks, checkpoint notices) until the
    /// whole cluster is done.
    pub fn serve_until_shutdown(&self) {
        let mut backoff = self.poll_backoff();
        while !self.shared.shutdown.load(Ordering::Relaxed) {
            if self.shared.dead.load(Ordering::Relaxed) {
                return;
            }
            // A false suspicion can fence even a finished rank; return
            // so the harness can crash-and-respawn it (peers reject a
            // fenced incarnation's frames, so serving is pointless).
            if self.shared.kernel.is_fenced() {
                return;
            }
            match self.mode {
                CommMode::Blocking { .. } => {
                    if self.pump().is_err() {
                        return;
                    }
                    let ep = self.endpoint.as_ref().expect("blocking mode endpoint");
                    match ep.recv_timeout(backoff.next_wait()) {
                        Ok(env) => {
                            self.shared.kernel.ingest(env);
                            backoff.reset();
                        }
                        Err(RecvError::Timeout) => {}
                        Err(_) => return,
                    }
                }
                CommMode::NonBlocking => {
                    // The comm thread does the serving; this thread
                    // only waits for the shutdown flag.
                    std::thread::sleep(backoff.next_wait());
                }
            }
        }
    }

    /// Consistent cross-layer snapshot of the kernel (statistics, log
    /// pressure, recovery phase).
    pub fn snapshot(&self) -> KernelSnapshot {
        self.shared.kernel.snapshot()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Stop the comm thread; without marking dead it would keep
        // polling a live endpoint forever.
        self.shared.dead.store(true, Ordering::Relaxed);
        self.shared.notifier.notify();
        if let Some(handle) = self.comm.take() {
            let _ = handle.join();
        }
    }
}

fn spawn_comm_thread(shared: Arc<Shared>, endpoint: Endpoint, poll: Duration) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name(format!("lclog-comm-{}", endpoint.rank()))
        .spawn(move || {
            let mut backoff = Backoff::new((poll / 8).max(Duration::from_micros(1)), poll);
            loop {
                if shared.dead.load(Ordering::Relaxed) || shared.shutdown.load(Ordering::Relaxed) {
                    return;
                }
                match endpoint.recv_timeout(backoff.next_wait()) {
                    Ok(env) => {
                        backoff.reset();
                        // Drain whatever else is queued and hand the
                        // kernel one batch — staged app wires admit
                        // under a single delivery acquisition and acks
                        // coalesce per peer — before waking the app
                        // thread.
                        let mut batch = vec![env];
                        while let Ok(env) = endpoint.try_recv() {
                            batch.push(env);
                        }
                        shared.kernel.ingest_batch(batch);
                        shared.kernel.tick();
                        shared.notifier.notify();
                    }
                    Err(RecvError::Timeout) => {
                        shared.kernel.tick();
                        shared.notifier.notify();
                    }
                    Err(RecvError::Dead) => {
                        shared.dead.store(true, Ordering::Relaxed);
                        shared.notifier.notify();
                        return;
                    }
                    Err(RecvError::Empty) => unreachable!(),
                }
            }
        })
        .expect("spawn comm thread")
}
