//! Lock-free building blocks for the data plane: a bounded
//! sequence-stamped ring ([`SeqRing`]) and an atomic counter vector
//! ([`AtomicCounters`]).
//!
//! # Ring layout
//!
//! [`SeqRing`] is the classic bounded MPMC sequence ring (Vyukov):
//! a power-of-two slot array where every slot carries its own atomic
//! sequence stamp. A slot at position `i` is writable when its stamp
//! equals the producer cursor (`seq == tail`), readable when it is one
//! past the consumer cursor (`seq == head + 1`), and the stamp advances
//! by `capacity` on every lap — so wraparound is unambiguous without a
//! separate full/empty flag and without ever overwriting an unconsumed
//! slot: a producer that laps the consumer observes `seq < tail` and
//! fails the push (backpressure) instead of clobbering the record.
//!
//! The kernel uses these rings in an SPSC pattern (one producer
//! channel-end, one drainer), but the implementation is safe for
//! arbitrary producers/consumers — the concurrent engines and the
//! crash-drain path both rely on being able to drain a ring from a
//! thread other than the one that filled it.

use lclog_core::CounterVector;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pads the hot cursors to their own cache lines so producer and
/// consumer do not false-share.
#[repr(align(64))]
struct CacheAligned<T>(T);

struct Slot<T> {
    /// Sequence stamp: `pos` = writable, `pos + 1` = readable,
    /// advances by `capacity` per lap.
    seq: AtomicU64,
    val: UnsafeCell<MaybeUninit<T>>,
}

/// Bounded lock-free ring of sequence-stamped slots. `try_push` fails
/// (returning the record) when the ring is full — producers exert
/// backpressure rather than overwrite, which is what lets a crash
/// drain recover exactly the unconsumed suffix.
pub(crate) struct SeqRing<T> {
    slots: Box<[Slot<T>]>,
    mask: u64,
    /// Producer cursor (next position to claim).
    tail: CacheAligned<AtomicU64>,
    /// Consumer cursor (next position to read).
    head: CacheAligned<AtomicU64>,
}

// SAFETY: records cross threads through the ring exactly once — a slot
// is written by the claiming producer before its Release stamp makes
// it visible, and read by the claiming consumer after an Acquire load
// of that stamp. `T: Send` is therefore sufficient.
unsafe impl<T: Send> Send for SeqRing<T> {}
unsafe impl<T: Send> Sync for SeqRing<T> {}

impl<T> SeqRing<T> {
    /// A ring with at least `capacity` slots (rounded up to a power of
    /// two, minimum 2).
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        let slots = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i as u64),
                val: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        SeqRing {
            slots,
            mask: (cap - 1) as u64,
            tail: CacheAligned(AtomicU64::new(0)),
            head: CacheAligned(AtomicU64::new(0)),
        }
    }

    /// Slot count.
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Append a record; `Err(record)` when the ring is full (the
    /// consumer has not freed the slot a full lap behind).
    pub(crate) fn try_push(&self, val: T) -> Result<(), T> {
        let mut pos = self.tail.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            match seq.cmp(&pos) {
                std::cmp::Ordering::Equal => {
                    match self.tail.0.compare_exchange_weak(
                        pos,
                        pos.wrapping_add(1),
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS claimed this slot for us
                            // alone; the stamp below publishes it.
                            unsafe { (*slot.val.get()).write(val) };
                            slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                            return Ok(());
                        }
                        Err(p) => pos = p,
                    }
                }
                std::cmp::Ordering::Less => return Err(val), // full: one lap behind
                std::cmp::Ordering::Greater => pos = self.tail.0.load(Ordering::Relaxed),
            }
        }
    }

    /// Pop the oldest record, if any.
    pub(crate) fn try_pop(&self) -> Option<T> {
        let mut pos = self.head.0.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            let ready = pos.wrapping_add(1);
            match seq.cmp(&ready) {
                std::cmp::Ordering::Equal => {
                    match self.head.0.compare_exchange_weak(
                        pos,
                        ready,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => {
                            // SAFETY: the CAS claimed this readable
                            // slot for us alone.
                            let val = unsafe { (*slot.val.get()).assume_init_read() };
                            // Free the slot for the producer one lap on.
                            slot.seq
                                .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
                            return Some(val);
                        }
                        Err(p) => pos = p,
                    }
                }
                std::cmp::Ordering::Less => return None, // empty
                std::cmp::Ordering::Greater => pos = self.head.0.load(Ordering::Relaxed),
            }
        }
    }

    /// True when no record is currently readable (racy but
    /// conservative in the SPSC drain pattern: the drainer sees every
    /// record pushed before it started).
    pub(crate) fn is_empty(&self) -> bool {
        self.head.0.load(Ordering::Acquire) == self.tail.0.load(Ordering::Acquire)
    }

    /// Approximate occupancy.
    pub(crate) fn len(&self) -> usize {
        let tail = self.tail.0.load(Ordering::Acquire);
        let head = self.head.0.load(Ordering::Acquire);
        tail.saturating_sub(head) as usize
    }
}

impl<T> Drop for SeqRing<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

/// A vector of per-rank `u64` counters with lock-free readers and
/// writers — the ring-era replacement for `Mutex<CounterVector>` on
/// the send path (`last_send_index`, `rollback_last_send_index`,
/// rendezvous `acked`).
pub(crate) struct AtomicCounters {
    slots: Vec<AtomicU64>,
}

impl AtomicCounters {
    pub(crate) fn zeroed(n: usize) -> Self {
        AtomicCounters {
            slots: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn get(&self, k: usize) -> u64 {
        self.slots[k].load(Ordering::Acquire)
    }

    pub(crate) fn set(&self, k: usize, v: u64) {
        self.slots[k].store(v, Ordering::Release);
    }

    /// Increment and return the new value.
    pub(crate) fn bump(&self, k: usize) -> u64 {
        self.slots[k].fetch_add(1, Ordering::AcqRel) + 1
    }

    /// Monotone raise: never lowers the stored value.
    pub(crate) fn max_up(&self, k: usize, v: u64) {
        self.slots[k].fetch_max(v, Ordering::AcqRel);
    }

    /// Point-in-time copy as a [`CounterVector`].
    pub(crate) fn snapshot(&self) -> CounterVector {
        CounterVector::from_vec(self.slots.iter().map(|s| s.load(Ordering::Acquire)).collect())
    }

    /// Overwrite every slot from a checkpointed vector.
    pub(crate) fn load_from(&self, v: &CounterVector) {
        for (slot, &val) in self.slots.iter().zip(v.as_slice()) {
            slot.store(val, Ordering::Release);
        }
    }
}

impl std::fmt::Debug for AtomicCounters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list()
            .entries(self.slots.iter().map(|s| s.load(Ordering::Relaxed)))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// splitmix64 — the repo's standard seeded generator for
    /// deterministic stress tests.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    #[test]
    fn fifo_order_within_capacity() {
        let ring = SeqRing::with_capacity(8);
        for i in 0..8u64 {
            ring.try_push(i).unwrap();
        }
        for i in 0..8u64 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
        assert!(ring.is_empty());
    }

    #[test]
    fn full_ring_backpressure_never_overwrites() {
        let ring = SeqRing::with_capacity(4);
        for i in 0..4u64 {
            ring.try_push(i).unwrap();
        }
        // Every further push must bounce with its record intact…
        for extra in [99u64, 100, 101] {
            assert_eq!(ring.try_push(extra), Err(extra), "full ring must refuse");
        }
        // …and the original records must come out untouched, in order.
        for i in 0..4u64 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        // One slot freed → exactly one push fits again.
        ring.try_push(7).unwrap();
        assert_eq!(ring.try_pop(), Some(7));
    }

    #[test]
    fn wraparound_at_slot_capacity_boundaries() {
        // Cross the capacity boundary many times with mixed occupancy,
        // including the exactly-full and exactly-empty edges, under a
        // seeded schedule. Stamps advance by a lap per reuse, so any
        // off-by-one at the boundary shows up as a lost or duplicated
        // record.
        let ring = SeqRing::with_capacity(8);
        let mut rng = 0x5eed_0001u64;
        let mut next_in = 0u64;
        let mut next_out = 0u64;
        for _ in 0..10_000 {
            if splitmix64(&mut rng) & 1 == 0 {
                match ring.try_push(next_in) {
                    Ok(()) => next_in += 1,
                    Err(v) => assert_eq!(v, next_in, "bounced record returned intact"),
                }
            } else if let Some(v) = ring.try_pop() {
                assert_eq!(v, next_out, "FIFO across wraparound");
                next_out += 1;
            }
        }
        while let Some(v) = ring.try_pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_in, next_out, "every accepted record drained once");
        assert!(next_in > 100, "schedule actually exercised the ring");
    }

    #[test]
    fn seeded_multithread_producers_consumers() {
        // 4 producers, 2 consumers, a deliberately small ring so the
        // schedule constantly hits both the full and empty edges.
        // Records are (producer, sequence) pairs; each producer's
        // stream must come out complete, exactly once, in order.
        for seed in [1u64, 2, 3, 4] {
            let ring = Arc::new(SeqRing::with_capacity(16));
            const PER: u64 = 20_000;
            const PRODUCERS: u64 = 4;
            let producers: Vec<_> = (0..PRODUCERS)
                .map(|p| {
                    let ring = Arc::clone(&ring);
                    std::thread::spawn(move || {
                        let mut rng = seed ^ (p << 32);
                        for i in 0..PER {
                            let mut rec = (p, i);
                            loop {
                                match ring.try_push(rec) {
                                    Ok(()) => break,
                                    Err(r) => {
                                        rec = r;
                                        if splitmix64(&mut rng) & 7 == 0 {
                                            std::thread::yield_now();
                                        }
                                    }
                                }
                            }
                        }
                    })
                })
                .collect();
            let done = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let consumers: Vec<_> = (0..2)
                .map(|_| {
                    let ring = Arc::clone(&ring);
                    let done = Arc::clone(&done);
                    std::thread::spawn(move || {
                        let mut got: Vec<Vec<u64>> = vec![Vec::new(); PRODUCERS as usize];
                        loop {
                            match ring.try_pop() {
                                Some((p, i)) => got[p as usize].push(i),
                                None if done.load(Ordering::Acquire) && ring.is_empty() => break,
                                None => std::hint::spin_loop(),
                            }
                        }
                        got
                    })
                })
                .collect();
            for h in producers {
                h.join().unwrap();
            }
            done.store(true, Ordering::Release);
            let mut merged: Vec<Vec<u64>> = vec![Vec::new(); PRODUCERS as usize];
            for h in consumers {
                for (p, seqs) in h.join().unwrap().into_iter().enumerate() {
                    merged[p].extend(seqs);
                }
            }
            for (p, seqs) in merged.iter_mut().enumerate() {
                seqs.sort_unstable();
                assert_eq!(
                    seqs.len() as u64,
                    PER,
                    "seed {seed}: producer {p} lost or duplicated records"
                );
                for (i, &s) in seqs.iter().enumerate() {
                    assert_eq!(s, i as u64, "seed {seed}: producer {p} stream corrupted");
                }
            }
        }
    }

    #[test]
    fn drain_on_crash_yields_exactly_the_unconsumed_suffix() {
        // The crash-drain contract: a producer appends records 1..=N
        // and the consumer acknowledges a prefix by popping it. When
        // the producer "crashes", a recovery thread draining the ring
        // must observe exactly the un-acked suffix — no acked record
        // reappears, no unconsumed record is lost — matching how the
        // kernel's rollback path drains sender-log rings.
        let mut rng = 0xdead_5eedu64;
        for _ in 0..50 {
            let ring = Arc::new(SeqRing::with_capacity(32));
            let total = 1 + splitmix64(&mut rng) % 200;
            let mut acked = 0u64;
            let mut pushed = 0u64;
            // Interleave pushes and "ack" pops up to the crash point.
            while pushed < total {
                if ring.try_push(pushed + 1).is_ok() {
                    pushed += 1;
                }
                if splitmix64(&mut rng) & 3 == 0 {
                    if let Some(v) = ring.try_pop() {
                        assert_eq!(v, acked + 1);
                        acked = v;
                    }
                }
            }
            // Crash: a different thread drains what is left.
            let drained = {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    let mut out = Vec::new();
                    while let Some(v) = ring.try_pop() {
                        out.push(v);
                    }
                    out
                })
                .join()
                .unwrap()
            };
            let expect: Vec<u64> = (acked + 1..=total).collect();
            assert_eq!(drained, expect, "drain must be exactly the un-acked suffix");
        }
    }

    #[test]
    fn atomic_counters_roundtrip() {
        let c = AtomicCounters::zeroed(3);
        assert_eq!(c.bump(1), 1);
        assert_eq!(c.bump(1), 2);
        c.set(2, 9);
        c.max_up(2, 5); // no-op: monotone
        assert_eq!(c.get(2), 9);
        c.max_up(2, 11);
        assert_eq!(c.snapshot().as_slice(), &[0, 2, 11]);
        c.load_from(&CounterVector::from_vec(vec![4, 5, 6]));
        assert_eq!(c.get(0), 4);
        assert_eq!(c.get(2), 6);
    }
}
