//! Injectable time source for the kernel stack.
//!
//! Every timestamp the kernel, transport, detector, recovery machine,
//! and tracking stats take flows through a [`Clock`] so that the
//! deterministic-simulation harness can substitute a
//! [`lclog_simnet::SimClock`]: under [`Clock::Sim`] no kernel-path
//! code reads the wall clock, making retransmission backoff, detector
//! accrual, rebroadcast intervals, and elapsed-time checkpoint
//! policies pure functions of the simulated schedule.
//!
//! Harness-side code (the cluster thread loop, the blocking engine's
//! rendezvous spin, the event-sink timeline) intentionally keeps real
//! time: it never runs on the deterministic sim path.

use lclog_simnet::SimClock;
use std::time::Instant;

/// Where the kernel stack reads "now" from.
#[derive(Debug, Clone, Default)]
pub enum Clock {
    /// The wall clock (`Instant::now`) — production and threaded runs.
    #[default]
    Real,
    /// A shared virtual clock advanced only by the simulation
    /// scheduler — deterministic runs.
    Sim(SimClock),
}

impl Clock {
    /// The current time, from whichever source this clock wraps.
    pub fn now(&self) -> Instant {
        match self {
            Clock::Real => Instant::now(),
            Clock::Sim(sim) => sim.now(),
        }
    }

    /// True when time is virtual (scheduler-owned).
    pub fn is_virtual(&self) -> bool {
        matches!(self, Clock::Sim(_))
    }
}
