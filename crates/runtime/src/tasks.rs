//! Ranks as scheduler tasks: many rank state machines multiplexed
//! onto a small sharded worker pool.
//!
//! The thread engine ([`crate::Cluster`]) is the faithful Fig. 4
//! arrangement — one OS thread per rank — and tops out around n ≈ 64:
//! beyond that, thread stacks and context switches dominate and an
//! n = 1024 run is not even schedulable. This module runs the *same
//! kernels* (same transport, sender log, checkpointing, rollback
//! recovery) cooperatively instead: each rank is a [`TaskApp`] state
//! machine polled by one of W worker threads, the fabric runs in held
//! mode so delivery happens in deterministic sweeps, and kernel time
//! is a scheduler-advanced virtual clock.
//!
//! Sharding is by rank (`rank % workers`), so a kernel is only ever
//! touched by its owning worker and no cross-worker locking exists
//! beyond the fabric itself. One sweep per worker:
//!
//! 1. drain the fabric inbox of every owned rank into its kernel;
//! 2. crash/respawn owned ranks the failure plan says to kill (held
//!    frames toward the dead slot are flushed while it is dead, so
//!    in-flight messages are lost exactly as in the thread engine);
//! 3. poll each live rank's state machine up to a bounded budget
//!    (checkpointing between steps, exactly like the thread loop);
//! 4. tick the kernel (retransmission timers, resync-request drain,
//!    rollback rebroadcast).
//!
//! Worker 0 additionally releases all held fabric channels, advances
//! the virtual clock, and arms the watchdog. Completion leaves a rank
//! serving its peers (drain + tick) until every rank is done — the
//! cooperative version of `serve_until_shutdown`.
//!
//! Unsupported in tasks mode (use the thread engine): event-logger
//! protocols (TEL/PES — the stable service is a thread), detected
//! failures, remote log shipping, node-loss (`wipe`) kills, and fabric
//! chaos (the fabric is forced to held delivery).

use crate::cluster::{ClusterConfig, RunReport, StorageKind};
use crate::clock::Clock;
use crate::config::EngineMode;
use crate::engine::Engine;
use crate::events::{EventKind, EventSink};
use crate::fault::{Fault, StepStatus};
use crate::kernel::Kernel;
use crate::message::{AppMsg, RecvSpec};
use crate::process::{RankApp, RankCtx};
use crate::transport::DataPlaneStats;
use bytes::Bytes;
use lclog_core::{Rank, TrackingStats};
use lclog_simnet::{Endpoint, NetConfig, SimClock, SimNet};
use lclog_stable::{CheckpointStore, DiskStore, MemStore, StableStorage};
use lclog_wire::{Decode, Encode};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one poll of a task state machine produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPoll {
    /// One application step completed — a checkpoint boundary, exactly
    /// like [`StepStatus::Continue`] in the thread engine.
    Step,
    /// Waiting on a message that has not arrived; poll again after the
    /// next delivery sweep. The task must NOT block its worker.
    Pending,
    /// The computation finished; the state's digest is final.
    Done,
}

/// A parallel application written as a poll-style state machine, the
/// cooperative counterpart of [`RankApp`].
///
/// The execution-model contract is the thread engine's: `poll` must be
/// a deterministic function of `(state, received messages)`, and a
/// recovered incarnation re-polls from its last checkpointed state
/// (re-sends are suppressed as repetitive by the kernel). The one new
/// rule: `poll` must never block — return [`TaskPoll::Pending`] and
/// park the partial progress in `state` instead.
pub trait TaskApp: Send + Sync + 'static {
    /// Serializable per-rank state, checkpointed between steps.
    type State: Encode + Decode + Send;

    /// Deterministic initial state of `rank` in an `n`-rank run.
    fn init(&self, rank: Rank, n: usize) -> Self::State;

    /// Advance the state machine as far as it can go without blocking.
    fn poll(&self, ctx: &mut TaskCtx<'_>, state: &mut Self::State) -> Result<TaskPoll, Fault>;

    /// A verification digest of the final state: identical across
    /// fault-free and recovered runs, and across engine modes.
    fn digest(&self, state: &Self::State) -> u64;
}

/// The runtime a task polls against: a bare kernel under the task
/// scheduler, or a full engine when a [`TaskApp`] runs inside the
/// thread engine via [`BlockingTaskApp`].
enum TaskIo<'a> {
    Kernel(&'a Kernel),
    Engine(&'a Engine),
}

/// The runtime handle passed to [`TaskApp::poll`] — the non-blocking
/// subset of [`RankCtx`].
pub struct TaskCtx<'a> {
    io: TaskIo<'a>,
    step: u64,
}

impl<'a> TaskCtx<'a> {
    fn for_kernel(kernel: &'a Kernel, step: u64) -> Self {
        TaskCtx {
            io: TaskIo::Kernel(kernel),
            step,
        }
    }

    pub(crate) fn for_engine(engine: &'a Engine, step: u64) -> Self {
        TaskCtx {
            io: TaskIo::Engine(engine),
            step,
        }
    }

    /// This process's rank.
    pub fn rank(&self) -> Rank {
        match &self.io {
            TaskIo::Kernel(k) => k.me(),
            TaskIo::Engine(e) => e.me(),
        }
    }

    /// Number of application ranks.
    pub fn n(&self) -> usize {
        match &self.io {
            TaskIo::Kernel(k) => k.n(),
            TaskIo::Engine(e) => e.n(),
        }
    }

    /// The current application step index.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Send `data` to `dst` under `tag` (never blocks — under the task
    /// scheduler sends are buffered into the held fabric).
    pub fn send(&mut self, dst: Rank, tag: u32, data: &[u8]) -> Result<(), Fault> {
        self.send_bytes(dst, tag, Bytes::copy_from_slice(data))
    }

    /// Zero-copy variant of [`TaskCtx::send`].
    pub fn send_bytes(&mut self, dst: Rank, tag: u32, data: Bytes) -> Result<(), Fault> {
        match &self.io {
            TaskIo::Kernel(k) => {
                k.app_send(dst, tag, data, false);
                Ok(())
            }
            TaskIo::Engine(e) => e.send(dst, tag, data),
        }
    }

    /// Send an [`Encode`]-able value.
    pub fn send_value<T: Encode>(&mut self, dst: Rank, tag: u32, value: &T) -> Result<(), Fault> {
        self.send_bytes(dst, tag, Bytes::from(lclog_wire::encode_to_vec(value)))
    }

    /// Deliver the first queued message matching `spec` if its
    /// dependency gate opens right now; `Ok(None)` means return
    /// [`TaskPoll::Pending`] and try again after the next sweep.
    pub fn try_recv(&mut self, spec: RecvSpec) -> Result<Option<AppMsg>, Fault> {
        match &self.io {
            TaskIo::Kernel(k) => Ok(k.try_deliver(spec)),
            TaskIo::Engine(e) => e.try_recv(spec),
        }
    }

    /// Receive and decode a value, asserting it decodes cleanly.
    pub fn try_recv_value<T: Decode>(
        &mut self,
        spec: RecvSpec,
    ) -> Result<Option<(Rank, T)>, Fault> {
        Ok(self.try_recv(spec)?.map(|msg| {
            let value =
                lclog_wire::decode_from_slice(&msg.data).expect("message payload decodes as T");
            (msg.src, value)
        }))
    }
}

/// Adapter running a [`TaskApp`] under the thread engine: `step` polls
/// the state machine to its next step boundary, sleeping briefly on
/// [`TaskPoll::Pending`]. This is how one workload runs under both
/// engine modes, which is what makes cross-mode digest checks (and the
/// SC1 scaling table's small-n thread baselines) possible.
pub struct BlockingTaskApp<A>(pub A);

impl<A: TaskApp> RankApp for BlockingTaskApp<A> {
    type State = A::State;

    fn init(&self, rank: Rank, n: usize) -> Self::State {
        self.0.init(rank, n)
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut Self::State) -> Result<StepStatus, Fault> {
        loop {
            let mut tctx = TaskCtx::for_engine(ctx.engine(), ctx.step());
            match self.0.poll(&mut tctx, state)? {
                TaskPoll::Step => return Ok(StepStatus::Continue),
                TaskPoll::Done => return Ok(StepStatus::Done),
                TaskPoll::Pending => std::thread::sleep(Duration::from_micros(50)),
            }
        }
    }

    fn digest(&self, state: &Self::State) -> u64 {
        self.0.digest(state)
    }
}

/// One rank's slot in a worker's shard.
struct Slot<A: TaskApp> {
    rank: Rank,
    incarnation: u64,
    endpoint: Endpoint,
    kernel: Kernel,
    state: A::State,
    step: u64,
    done: bool,
    digest: u64,
    /// Merged across this rank's incarnations (live kernel excluded
    /// until its crash or completion).
    stats: TrackingStats,
    data_plane: DataPlaneStats,
}

/// Steps a slot may take per sweep before yielding to its shard-mates.
const POLL_BUDGET: usize = 32;
/// Virtual time per sweep — enough that retransmission and rebroadcast
/// timers make progress over tens of sweeps without ever dominating.
const SWEEP_ADVANCE: Duration = Duration::from_micros(50);

/// Run `app` on `cfg.n` ranks as cooperative tasks on a sharded worker
/// pool (see the module docs for the sweep loop and the list of
/// configurations that require the thread engine instead).
pub fn run_tasks<A: TaskApp>(cfg: &ClusterConfig, app: A) -> Result<RunReport, String> {
    let n = cfg.n;
    assert!(n > 0, "cluster needs at least one rank");
    if cfg.run.protocol.uses_event_logger() {
        return Err(format!(
            "protocol {} needs the event-logger service thread; use the thread engine",
            cfg.run.protocol
        ));
    }
    if cfg.run.detector.is_some() {
        return Err("detected failures are not supported in tasks mode".into());
    }
    if cfg.remote.is_some() {
        return Err("remote log shipping is not supported in tasks mode".into());
    }

    let workers = match cfg.run.engine {
        EngineMode::Tasks { workers } => workers.max(1),
        EngineMode::Threads => 4,
    }
    .min(n);
    let clock = SimClock::new();
    let mut run_cfg = cfg.run.clone();
    run_cfg.clock = Clock::Sim(clock.clone());
    // Held delivery is what makes sweeps deterministic and lets one
    // thread serve many ranks; chaos injection (which rides the
    // courier model) is not available here.
    let net = SimNet::new(n + 1, NetConfig::held());
    let storage: Arc<dyn StableStorage> = match &cfg.storage {
        StorageKind::Memory => Arc::new(MemStore::new()),
        StorageKind::Disk(dir) => {
            Arc::new(DiskStore::open(dir).map_err(|e| format!("open disk store: {e}"))?)
        }
    };
    let ckpts = CheckpointStore::new(storage);
    let sink = if cfg.trace {
        EventSink::recording()
    } else {
        EventSink::disabled()
    };
    // Attach every endpoint before any worker starts, then shard
    // round-robin.
    let endpoints: Vec<Endpoint> = (0..n).map(|rank| net.attach(rank)).collect();
    let mut shards: Vec<Vec<Slot<A>>> = (0..workers).map(|_| Vec::new()).collect();
    for (rank, endpoint) in endpoints.into_iter().enumerate() {
        let mut kernel = Kernel::new(rank, n, run_cfg.clone(), net.clone(), ckpts.clone());
        kernel.set_incarnation(1);
        kernel.set_event_sink(sink.clone());
        sink.emit(rank, EventKind::Spawned { incarnation: 1 });
        shards[rank % workers].push(Slot {
            rank,
            incarnation: 1,
            endpoint,
            kernel,
            state: app.init(rank, n),
            step: 0,
            done: false,
            digest: 0,
            stats: TrackingStats::default(),
            data_plane: DataPlaneStats::default(),
        });
    }

    let done_count = AtomicUsize::new(0);
    let kills = AtomicU32::new(0);
    let finished = AtomicBool::new(false);
    let failure: Mutex<Option<String>> = Mutex::new(None);
    let start = Instant::now();
    let app = &app;
    let run_cfg = &run_cfg;
    let max_wall = cfg.max_wall;

    let shard_results: Vec<Vec<Slot<A>>> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(w, mut slots)| {
                let net = net.clone();
                let ckpts = ckpts.clone();
                let sink = sink.clone();
                let clock = clock.clone();
                let (done_count, kills, finished, failure) =
                    (&done_count, &kills, &finished, &failure);
                s.spawn(move || {
                    worker_sweeps(WorkerCtx {
                        worker: w,
                        slots: &mut slots,
                        app,
                        cfg,
                        run_cfg,
                        net: &net,
                        ckpts: &ckpts,
                        sink: &sink,
                        clock: &clock,
                        done_count,
                        kills,
                        finished,
                        failure,
                        start,
                        max_wall,
                    });
                    slots
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("task worker panicked"))
            .collect()
    });
    if let Some(msg) = failure.into_inner() {
        return Err(msg);
    }

    let mut digests = vec![0u64; n];
    let mut per_rank_stats = vec![TrackingStats::default(); n];
    let mut per_rank_data_plane = vec![DataPlaneStats::default(); n];
    for slot in shard_results.into_iter().flatten() {
        debug_assert!(slot.done, "run completed with an unfinished rank");
        digests[slot.rank] = slot.digest;
        per_rank_stats[slot.rank] = slot.stats;
        per_rank_data_plane[slot.rank] = slot.data_plane;
    }
    let mut stats = TrackingStats::default();
    for s in &per_rank_stats {
        stats.merge(s);
    }
    let mut data_plane = DataPlaneStats::default();
    for d in &per_rank_data_plane {
        data_plane.merge(d);
    }
    Ok(RunReport {
        digests,
        per_rank_stats,
        stats,
        wall: start.elapsed(),
        kills: kills.load(Ordering::Relaxed),
        net_msgs: net.stats().msgs_sent(),
        net_bytes: net.stats().bytes_sent(),
        retransmits: net.stats().retransmits(),
        chaos_dropped: net.stats().chaos_dropped(),
        chaos_duplicated: net.stats().chaos_duplicated(),
        chaos_corrupted: net.stats().chaos_corrupted(),
        per_rank_data_plane,
        data_plane,
        timeline: sink.take(),
        detector: None,
        replicator: None,
    })
}

/// Everything one worker's sweep loop needs (bundled to keep the
/// function signature legible).
struct WorkerCtx<'a, A: TaskApp> {
    worker: usize,
    slots: &'a mut Vec<Slot<A>>,
    app: &'a A,
    cfg: &'a ClusterConfig,
    run_cfg: &'a crate::config::RunConfig,
    net: &'a SimNet,
    ckpts: &'a CheckpointStore,
    sink: &'a EventSink,
    clock: &'a SimClock,
    done_count: &'a AtomicUsize,
    kills: &'a AtomicU32,
    finished: &'a AtomicBool,
    failure: &'a Mutex<Option<String>>,
    start: Instant,
    max_wall: Duration,
}

fn worker_sweeps<A: TaskApp>(w: WorkerCtx<'_, A>) {
    let n = w.cfg.n;
    loop {
        let mut progressed = false;
        for slot in w.slots.iter_mut() {
            // 1. Drain the fabric inbox as one batch (one delivery
            // acquisition, coalesced acks).
            let mut batch = Vec::new();
            while let Ok(env) = slot.endpoint.try_recv() {
                batch.push(env);
            }
            if !batch.is_empty() {
                slot.kernel.ingest_batch(batch);
                progressed = true;
            }
            if !slot.done {
                if w.cfg.failures.should_kill(slot.rank, slot.incarnation, slot.step) {
                    w.kills.fetch_add(1, Ordering::Relaxed);
                    crash_and_respawn(slot, w.app, w.net, w.ckpts, w.run_cfg, w.sink, n);
                    progressed = true;
                } else if slot.kernel.is_fenced() || slot.kernel.is_desynced() {
                    // No detector runs in tasks mode, but the desync
                    // path (tracking merge rejected a gate-approved
                    // message) is still reachable; rebuild through the
                    // rollback path like the thread engine does.
                    w.kills.fetch_add(1, Ordering::Relaxed);
                    crash_and_respawn(slot, w.app, w.net, w.ckpts, w.run_cfg, w.sink, n);
                    progressed = true;
                } else {
                    // 3. Poll up to the budget.
                    for _ in 0..POLL_BUDGET {
                        let mut ctx = TaskCtx::for_kernel(&slot.kernel, slot.step);
                        match w.app.poll(&mut ctx, &mut slot.state) {
                            Ok(TaskPoll::Pending) => break,
                            Ok(TaskPoll::Step) => {
                                slot.step += 1;
                                if slot.kernel.checkpoint_due(slot.step) {
                                    slot.kernel.do_checkpoint(
                                        lclog_wire::encode_to_vec(&slot.state),
                                        slot.step,
                                    );
                                }
                                progressed = true;
                                // Kills fire on step boundaries; leave
                                // the budget so the next sweep's kill
                                // check sees the new step promptly.
                                if w.cfg.failures.should_kill(
                                    slot.rank,
                                    slot.incarnation,
                                    slot.step,
                                ) {
                                    break;
                                }
                            }
                            Ok(TaskPoll::Done) => {
                                w.sink.emit(slot.rank, EventKind::Done { step: slot.step });
                                // A final checkpoint lets every peer
                                // release the last log entries
                                // referring to us.
                                slot.kernel.do_checkpoint(
                                    lclog_wire::encode_to_vec(&slot.state),
                                    slot.step,
                                );
                                slot.digest = w.app.digest(&slot.state);
                                let snap = slot.kernel.snapshot();
                                slot.stats.merge(&snap.stats);
                                slot.data_plane.merge(&snap.data_plane);
                                slot.done = true;
                                w.done_count.fetch_add(1, Ordering::Relaxed);
                                progressed = true;
                                break;
                            }
                            Err(Fault::Shutdown) => break,
                            Err(_) => {
                                w.kills.fetch_add(1, Ordering::Relaxed);
                                crash_and_respawn(
                                    slot, w.app, w.net, w.ckpts, w.run_cfg, w.sink, n,
                                );
                                progressed = true;
                                break;
                            }
                        }
                    }
                }
            }
            // 4. Timers, resync-request drain, rollback rebroadcast.
            // Done ranks keep ticking: the cooperative
            // `serve_until_shutdown`.
            slot.kernel.tick();
        }
        if w.worker == 0 {
            // 2'. Release everything in flight, advance virtual time,
            // arm the watchdog.
            if w.net.held_deliver_all() > 0 {
                progressed = true;
            }
            w.clock.advance(SWEEP_ADVANCE);
            if w.done_count.load(Ordering::Relaxed) == n {
                w.finished.store(true, Ordering::Release);
            } else if w.start.elapsed() > w.max_wall {
                *w.failure.lock() = Some(format!(
                    "tasks watchdog fired after {:?} (protocol {}, {} ranks, {} workers)",
                    w.max_wall,
                    w.cfg.run.protocol,
                    n,
                    w.slots.len().max(1)
                ));
                w.finished.store(true, Ordering::Release);
            }
        }
        if w.finished.load(Ordering::Acquire) {
            return;
        }
        if !progressed {
            std::thread::yield_now();
        }
    }
}

/// Crash `slot`'s incarnation and bring up its successor through the
/// normal rollback path — the tasks-mode equivalent of the thread
/// engine's `crash` + respawn cycle.
fn crash_and_respawn<A: TaskApp>(
    slot: &mut Slot<A>,
    app: &A,
    net: &SimNet,
    ckpts: &CheckpointStore,
    run_cfg: &crate::config::RunConfig,
    sink: &EventSink,
    n: usize,
) {
    sink.emit(slot.rank, EventKind::Crashed { step: slot.step });
    net.kill(slot.rank);
    // Flush held frames toward the dead slot — they are dropped at
    // delivery, reproducing the thread engine's loss of in-flight
    // messages at a crash (survivors resend from their logs).
    for src in 0..n + 1 {
        while net.held_deliver(src, slot.rank) {}
    }
    let snap = slot.kernel.snapshot();
    slot.stats.merge(&snap.stats);
    slot.data_plane.merge(&snap.data_plane);
    slot.incarnation += 1;
    slot.endpoint = net.respawn(slot.rank);
    let mut kernel = Kernel::new(slot.rank, n, run_cfg.clone(), net.clone(), ckpts.clone());
    kernel.set_incarnation(slot.incarnation);
    kernel.set_event_sink(sink.clone());
    sink.emit(
        slot.rank,
        EventKind::Spawned {
            incarnation: slot.incarnation,
        },
    );
    let (step, state) = match kernel.load_checkpoint() {
        Some(image) => {
            let (step, app_bytes) = kernel.restore(image);
            let state = lclog_wire::decode_from_slice(&app_bytes)
                .expect("checkpointed app state decodes");
            (step, state)
        }
        None => (0u64, app.init(slot.rank, n)),
    };
    kernel.begin_recovery();
    slot.kernel = kernel;
    slot.state = state;
    slot.step = step;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, FailurePlan};
    use crate::config::{CheckpointPolicy, RunConfig};
    use lclog_core::ProtocolKind;
    use lclog_wire::impl_wire_struct;

    const TAG: u32 = 7;

    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[derive(Debug, Clone, PartialEq)]
    struct RingState {
        round: u64,
        sent: bool,
        acc: u64,
    }

    impl_wire_struct!(RingState { round, sent, acc });

    /// Neighbor-exchange ring: each round every rank sends one value
    /// right and folds one value from the left — all n messages of a
    /// round are in flight concurrently, so a round costs O(1) sweeps
    /// regardless of n.
    struct ExchangeRing {
        rounds: u64,
    }

    impl TaskApp for ExchangeRing {
        type State = RingState;

        fn init(&self, rank: Rank, _n: usize) -> RingState {
            RingState {
                round: 0,
                sent: false,
                acc: mix(rank as u64),
            }
        }

        fn poll(&self, ctx: &mut TaskCtx<'_>, st: &mut RingState) -> Result<TaskPoll, Fault> {
            if st.round >= self.rounds {
                return Ok(TaskPoll::Done);
            }
            let me = ctx.rank();
            let n = ctx.n();
            if !st.sent {
                let payload = mix(st.acc ^ st.round);
                ctx.send_value((me + 1) % n, TAG, &payload)?;
                st.sent = true;
            }
            let left = (me + n - 1) % n;
            match ctx.try_recv_value::<u64>(RecvSpec::from(left, TAG))? {
                Some((_, v)) => {
                    st.acc = mix(st.acc.wrapping_add(v));
                    st.sent = false;
                    st.round += 1;
                    Ok(TaskPoll::Step)
                }
                None => Ok(TaskPoll::Pending),
            }
        }

        fn digest(&self, st: &RingState) -> u64 {
            mix(st.acc ^ st.round)
        }
    }

    fn tasks_cfg(n: usize, kind: ProtocolKind) -> ClusterConfig {
        ClusterConfig::new(
            n,
            RunConfig::new(kind)
                .with_checkpoint(CheckpointPolicy::EverySteps(2))
                .with_engine(EngineMode::Tasks { workers: 2 }),
        )
        .with_max_wall(Duration::from_secs(30))
    }

    #[test]
    fn tasks_and_threads_agree_on_digests() {
        let app = || ExchangeRing { rounds: 6 };
        let tasks = run_tasks(&tasks_cfg(4, ProtocolKind::Tdi), app()).unwrap();
        let threads = Cluster::run(
            &ClusterConfig::new(
                4,
                RunConfig::new(ProtocolKind::Tdi)
                    .with_checkpoint(CheckpointPolicy::EverySteps(2)),
            ),
            BlockingTaskApp(app()),
        )
        .unwrap();
        assert_eq!(tasks.digests, threads.digests);
        assert_eq!(tasks.stats.delivers, threads.stats.delivers);
    }

    #[test]
    fn tasks_mode_recovers_to_clean_digests() {
        for kind in [ProtocolKind::Tdi, ProtocolKind::TdiSparse(8)] {
            let clean = run_tasks(&tasks_cfg(4, kind), ExchangeRing { rounds: 8 }).unwrap();
            let faulty = run_tasks(
                &tasks_cfg(4, kind).with_failures(FailurePlan::kill_at(1, 3)),
                ExchangeRing { rounds: 8 },
            )
            .unwrap();
            assert!(faulty.kills >= 1, "{kind}: the planned kill must fire");
            assert_eq!(
                faulty.digests, clean.digests,
                "{kind}: recovery must reproduce the fault-free digests"
            );
        }
    }

    #[test]
    fn tasks_mode_rejects_service_protocols() {
        assert!(run_tasks(&tasks_cfg(3, ProtocolKind::Tel), ExchangeRing { rounds: 2 }).is_err());
        assert!(
            run_tasks(&tasks_cfg(3, ProtocolKind::Pessim), ExchangeRing { rounds: 2 }).is_err()
        );
    }

    #[test]
    fn sparse_tasks_run_reports_frame_stats() {
        // n must be large enough that a dense vector dwarfs a delta
        // frame's fixed overhead (at n = 4 dense wins; sparse exists
        // for large n).
        let n = 32;
        let sparse = run_tasks(
            &tasks_cfg(n, ProtocolKind::TdiSparse(8)),
            ExchangeRing { rounds: 4 },
        )
        .unwrap();
        assert!(sparse.stats.full_frames > 0, "first frames are FULL");
        assert!(sparse.stats.delta_frames > 0, "steady state is deltas");
        let dense =
            run_tasks(&tasks_cfg(n, ProtocolKind::Tdi), ExchangeRing { rounds: 4 }).unwrap();
        assert!(
            sparse.stats.piggyback_bytes < dense.stats.piggyback_bytes,
            "sparse {} >= dense {}",
            sparse.stats.piggyback_bytes,
            dense.stats.piggyback_bytes
        );
    }
}
