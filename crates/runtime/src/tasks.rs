//! Ranks as scheduler tasks: many rank state machines multiplexed
//! onto a small sharded worker pool.
//!
//! The thread engine ([`crate::Cluster`]) is the faithful Fig. 4
//! arrangement — one OS thread per rank — and tops out around n ≈ 64:
//! beyond that, thread stacks and context switches dominate and an
//! n = 1024 run is not even schedulable. This module runs the *same
//! kernels* (same transport, sender log, checkpointing, rollback
//! recovery) cooperatively instead: each rank is a [`TaskApp`] state
//! machine polled by one of W worker threads, the fabric runs in held
//! mode so delivery happens in deterministic sweeps, and kernel time
//! is a scheduler-advanced virtual clock.
//!
//! Sharding is by rank (`rank % workers`), so a kernel is only ever
//! touched by the worker currently holding its shard and no
//! cross-worker locking exists beyond the fabric itself. One sweep per
//! shard:
//!
//! 1. drain the fabric inbox of every owned rank into its kernel;
//! 2. crash/respawn owned ranks the failure plan says to kill (held
//!    frames toward the dead slot are flushed while it is dead, so
//!    in-flight messages are lost exactly as in the thread engine;
//!    `wipe` kills also lose the rank's local generations and restore
//!    from the remote);
//! 3. poll each live rank's state machine up to a bounded budget
//!    (checkpointing between steps, exactly like the thread loop);
//! 4. tick the kernel (retransmission timers, resync-request drain,
//!    rollback rebroadcast).
//!
//! The leader duties ([`TaskJob::advance`]) release all held fabric
//! channels, advance the virtual clock, and arm the watchdog.
//! Completion leaves a rank serving its peers (drain + tick) until
//! every rank is done — the cooperative version of
//! `serve_until_shutdown`.
//!
//! The engine comes in two shapes:
//!
//! * [`run_tasks`] — the standalone entry point: one scoped worker
//!   pool per run, worker `w` permanently owning shard `w`;
//! * [`TaskJob`] — the same machine exposed as a sweepable object for
//!   long-running hosts (the `lclog-serve` service), where one shared
//!   worker pool multiplexes *many* concurrent jobs: any pool thread
//!   may [`TaskJob::sweep`] any shard of any job (shard mutexes keep
//!   kernels single-threaded), and a [`TasksEnv`] lets co-resident
//!   jobs share one stable-storage backend and one replication
//!   pipeline, namespaced by [`ClusterConfig::rank_base`].
//!
//! Unsupported in tasks mode (clean config errors from
//! [`TaskJob::new`]; use the thread engine): event-logger protocols
//! (TEL/PES — the stable service is a thread), detected failures,
//! latency delivery models (the fabric is forced to held delivery),
//! and fabric chaos (which rides the courier model).

use crate::cluster::{ClusterConfig, RunReport, ShippingStorage, StorageKind};
use crate::clock::Clock;
use crate::config::EngineMode;
use crate::engine::Engine;
use crate::events::{EventKind, EventSink};
use crate::fault::{Fault, StepStatus};
use crate::kernel::Kernel;
use crate::message::{AppMsg, RecvSpec};
use crate::process::{RankApp, RankCtx};
use crate::replicator::Replicator;
use crate::transport::DataPlaneStats;
use bytes::Bytes;
use lclog_core::{Rank, TrackingStats};
use lclog_simnet::{DeliveryModel, Endpoint, NetConfig, SimClock, SimNet};
use lclog_stable::{CheckpointStore, DiskStore, MemStore, StableStorage};
use lclog_wire::{Decode, Encode};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one poll of a task state machine produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPoll {
    /// One application step completed — a checkpoint boundary, exactly
    /// like [`StepStatus::Continue`] in the thread engine.
    Step,
    /// Waiting on a message that has not arrived; poll again after the
    /// next delivery sweep. The task must NOT block its worker.
    Pending,
    /// The computation finished; the state's digest is final.
    Done,
}

/// A parallel application written as a poll-style state machine, the
/// cooperative counterpart of [`RankApp`].
///
/// The execution-model contract is the thread engine's: `poll` must be
/// a deterministic function of `(state, received messages)`, and a
/// recovered incarnation re-polls from its last checkpointed state
/// (re-sends are suppressed as repetitive by the kernel). The one new
/// rule: `poll` must never block — return [`TaskPoll::Pending`] and
/// park the partial progress in `state` instead.
pub trait TaskApp: Send + Sync + 'static {
    /// Serializable per-rank state, checkpointed between steps.
    type State: Encode + Decode + Send;

    /// Deterministic initial state of `rank` in an `n`-rank run.
    fn init(&self, rank: Rank, n: usize) -> Self::State;

    /// Advance the state machine as far as it can go without blocking.
    fn poll(&self, ctx: &mut TaskCtx<'_>, state: &mut Self::State) -> Result<TaskPoll, Fault>;

    /// A verification digest of the final state: identical across
    /// fault-free and recovered runs, and across engine modes.
    fn digest(&self, state: &Self::State) -> u64;
}

/// The runtime a task polls against: a bare kernel under the task
/// scheduler, or a full engine when a [`TaskApp`] runs inside the
/// thread engine via [`BlockingTaskApp`].
enum TaskIo<'a> {
    Kernel(&'a Kernel),
    Engine(&'a Engine),
}

/// The runtime handle passed to [`TaskApp::poll`] — the non-blocking
/// subset of [`RankCtx`].
pub struct TaskCtx<'a> {
    io: TaskIo<'a>,
    step: u64,
}

impl<'a> TaskCtx<'a> {
    fn for_kernel(kernel: &'a Kernel, step: u64) -> Self {
        TaskCtx {
            io: TaskIo::Kernel(kernel),
            step,
        }
    }

    pub(crate) fn for_engine(engine: &'a Engine, step: u64) -> Self {
        TaskCtx {
            io: TaskIo::Engine(engine),
            step,
        }
    }

    /// This process's rank.
    pub fn rank(&self) -> Rank {
        match &self.io {
            TaskIo::Kernel(k) => k.me(),
            TaskIo::Engine(e) => e.me(),
        }
    }

    /// Number of application ranks.
    pub fn n(&self) -> usize {
        match &self.io {
            TaskIo::Kernel(k) => k.n(),
            TaskIo::Engine(e) => e.n(),
        }
    }

    /// The current application step index.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Send `data` to `dst` under `tag` (never blocks — under the task
    /// scheduler sends are buffered into the held fabric).
    pub fn send(&mut self, dst: Rank, tag: u32, data: &[u8]) -> Result<(), Fault> {
        self.send_bytes(dst, tag, Bytes::copy_from_slice(data))
    }

    /// Zero-copy variant of [`TaskCtx::send`].
    pub fn send_bytes(&mut self, dst: Rank, tag: u32, data: Bytes) -> Result<(), Fault> {
        match &self.io {
            TaskIo::Kernel(k) => {
                k.app_send(dst, tag, data, false);
                Ok(())
            }
            TaskIo::Engine(e) => e.send(dst, tag, data),
        }
    }

    /// Send an [`Encode`]-able value.
    pub fn send_value<T: Encode>(&mut self, dst: Rank, tag: u32, value: &T) -> Result<(), Fault> {
        self.send_bytes(dst, tag, Bytes::from(lclog_wire::encode_to_vec(value)))
    }

    /// Deliver the first queued message matching `spec` if its
    /// dependency gate opens right now; `Ok(None)` means return
    /// [`TaskPoll::Pending`] and try again after the next sweep.
    pub fn try_recv(&mut self, spec: RecvSpec) -> Result<Option<AppMsg>, Fault> {
        match &self.io {
            TaskIo::Kernel(k) => Ok(k.try_deliver(spec)),
            TaskIo::Engine(e) => e.try_recv(spec),
        }
    }

    /// Receive and decode a value. A payload that does not decode as
    /// `T` is wire input this incarnation cannot trust — it surfaces as
    /// [`Fault::Desync`] (crash-and-rebuild through the rollback path)
    /// rather than a process abort.
    pub fn try_recv_value<T: Decode>(
        &mut self,
        spec: RecvSpec,
    ) -> Result<Option<(Rank, T)>, Fault> {
        match self.try_recv(spec)? {
            None => Ok(None),
            Some(msg) => match lclog_wire::decode_from_slice(&msg.data) {
                Ok(value) => Ok(Some((msg.src, value))),
                Err(_) => Err(Fault::Desync),
            },
        }
    }
}

/// Adapter running a [`TaskApp`] under the thread engine: `step` polls
/// the state machine to its next step boundary, sleeping briefly on
/// [`TaskPoll::Pending`]. This is how one workload runs under both
/// engine modes, which is what makes cross-mode digest checks (and the
/// SC1 scaling table's small-n thread baselines) possible.
pub struct BlockingTaskApp<A>(pub A);

impl<A: TaskApp> RankApp for BlockingTaskApp<A> {
    type State = A::State;

    fn init(&self, rank: Rank, n: usize) -> Self::State {
        self.0.init(rank, n)
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut Self::State) -> Result<StepStatus, Fault> {
        loop {
            let mut tctx = TaskCtx::for_engine(ctx.engine(), ctx.step());
            match self.0.poll(&mut tctx, state)? {
                TaskPoll::Step => return Ok(StepStatus::Continue),
                TaskPoll::Done => return Ok(StepStatus::Done),
                TaskPoll::Pending => std::thread::sleep(Duration::from_micros(50)),
            }
        }
    }

    fn digest(&self, state: &Self::State) -> u64 {
        self.0.digest(state)
    }
}

/// One rank's slot in a worker's shard.
struct Slot<A: TaskApp> {
    rank: Rank,
    incarnation: u64,
    endpoint: Endpoint,
    kernel: Kernel,
    state: A::State,
    step: u64,
    done: bool,
    digest: u64,
    /// Merged across this rank's incarnations (live kernel excluded
    /// until its crash or completion).
    stats: TrackingStats,
    data_plane: DataPlaneStats,
}

/// Steps a slot may take per sweep before yielding to its shard-mates.
const POLL_BUDGET: usize = 32;
/// Virtual time per sweep — enough that retransmission and rebroadcast
/// timers make progress over tens of sweeps without ever dominating.
const SWEEP_ADVANCE: Duration = Duration::from_micros(50);

/// The durable environment a [`TaskJob`] runs against. A standalone
/// run builds its own ([`TaskJob::new`]); a hosting service builds one
/// shared environment and hands it to every job
/// ([`TaskJob::with_env`]), so co-resident tenants write into one
/// backend (namespaced by [`ClusterConfig::rank_base`]) and ship
/// through one replication pipeline.
pub struct TasksEnv {
    /// Local stable storage shared by the jobs.
    pub storage: Arc<dyn StableStorage>,
    /// Shared replication pipeline (`None` = local-only durability).
    /// The job offers its checkpoint generations into it and restores
    /// node-loss wipes from it, but never calls `finish` — lifecycle
    /// belongs to the host.
    pub replicator: Option<Arc<Replicator>>,
}

/// One tasks-engine run as a sweepable object: construction validates
/// the config and builds every kernel; any thread may then drive
/// [`TaskJob::sweep`] / [`TaskJob::advance`] until
/// [`TaskJob::is_finished`], and [`TaskJob::report`] assembles the
/// [`RunReport`]. [`run_tasks`] wraps this in a dedicated scoped pool;
/// the `lclog-serve` service multiplexes many jobs onto one pool.
pub struct TaskJob<A: TaskApp> {
    app: A,
    n: usize,
    rank_base: usize,
    protocol: String,
    failures: crate::cluster::FailurePlan,
    run_cfg: crate::config::RunConfig,
    net: SimNet,
    clock: SimClock,
    ckpts: CheckpointStore,
    raw_storage: Arc<dyn StableStorage>,
    replicator: Option<Arc<Replicator>>,
    owns_replicator: bool,
    sink: EventSink,
    shards: Vec<Mutex<Vec<Slot<A>>>>,
    done_count: AtomicUsize,
    kills: AtomicU32,
    finished: AtomicBool,
    failure: Mutex<Option<String>>,
    start: Instant,
    max_wall: Duration,
}

impl<A: TaskApp> TaskJob<A> {
    /// Build a standalone job: its own storage backend (from
    /// `cfg.storage`) and, when `cfg.remote` is set, its own
    /// replication pipeline (finished when the job's report is taken).
    pub fn new(cfg: &ClusterConfig, app: A) -> Result<Self, String> {
        let storage: Arc<dyn StableStorage> = match &cfg.storage {
            StorageKind::Memory => Arc::new(MemStore::new()),
            StorageKind::Disk(dir) => {
                Arc::new(DiskStore::open(dir).map_err(|e| format!("open disk store: {e}"))?)
            }
        };
        let replicator = cfg.remote.as_ref().map(|rc| {
            Replicator::spawn(
                Arc::clone(&rc.store),
                rc.replicator.clone(),
                EventSink::disabled(),
                cfg.rank_base + crate::logger_rank(cfg.n),
            )
        });
        Self::build(cfg, app, storage, replicator, true)
    }

    /// Build a job against a host-owned environment (see [`TasksEnv`]).
    /// `cfg.remote` is ignored: remote durability is whatever the
    /// shared `env.replicator` provides.
    pub fn with_env(cfg: &ClusterConfig, app: A, env: &TasksEnv) -> Result<Self, String> {
        Self::build(
            cfg,
            app,
            Arc::clone(&env.storage),
            env.replicator.clone(),
            false,
        )
    }

    fn build(
        cfg: &ClusterConfig,
        app: A,
        raw_storage: Arc<dyn StableStorage>,
        replicator: Option<Arc<Replicator>>,
        owns_replicator: bool,
    ) -> Result<Self, String> {
        let n = cfg.n;
        assert!(n > 0, "cluster needs at least one rank");
        validate(cfg)?;

        let workers = match cfg.run.engine {
            EngineMode::Tasks { workers } => workers.max(1),
            EngineMode::Threads => 4,
        }
        .min(n);
        let clock = SimClock::new();
        let mut run_cfg = cfg.run.clone();
        run_cfg.clock = Clock::Sim(clock.clone());
        // Replicated checkpoints imply a node-loss restore may fall
        // back one generation; survivors must then keep one extra
        // generation of sender-log entries resendable.
        if replicator.is_some() {
            run_cfg.log_gc_lag = true;
        }
        // Held delivery is what makes sweeps deterministic and lets one
        // thread serve many ranks (validate() rejected configs that
        // asked for anything the held fabric cannot honour).
        let net = SimNet::new(n + 1, NetConfig::held());
        // Durable writes flow through the shipping wrapper when a
        // replicator exists; restores install straight into the raw
        // store (avoiding a re-ship of what just came down).
        let ckpt_storage: Arc<dyn StableStorage> = match &replicator {
            Some(repl) => Arc::new(ShippingStorage::new(
                Arc::clone(&raw_storage),
                Arc::clone(repl),
            )),
            None => Arc::clone(&raw_storage),
        };
        let ckpts = CheckpointStore::new(ckpt_storage).with_rank_base(cfg.rank_base);
        let sink = if cfg.trace {
            EventSink::recording()
        } else {
            EventSink::disabled()
        };
        // Attach every endpoint before any sweep runs, then shard
        // round-robin.
        let endpoints: Vec<Endpoint> = (0..n).map(|rank| net.attach(rank)).collect();
        let mut shards: Vec<Vec<Slot<A>>> = (0..workers).map(|_| Vec::new()).collect();
        for (rank, endpoint) in endpoints.into_iter().enumerate() {
            let mut kernel = Kernel::new(rank, n, run_cfg.clone(), net.clone(), ckpts.clone());
            kernel.set_incarnation(1);
            kernel.set_event_sink(sink.clone());
            sink.emit(rank, EventKind::Spawned { incarnation: 1 });
            shards[rank % workers].push(Slot {
                rank,
                incarnation: 1,
                endpoint,
                kernel,
                state: app.init(rank, n),
                step: 0,
                done: false,
                digest: 0,
                stats: TrackingStats::default(),
                data_plane: DataPlaneStats::default(),
            });
        }
        Ok(TaskJob {
            app,
            n,
            rank_base: cfg.rank_base,
            protocol: cfg.run.protocol.to_string(),
            failures: cfg.failures.clone(),
            run_cfg,
            net,
            clock,
            ckpts,
            raw_storage,
            replicator,
            owns_replicator,
            sink,
            shards: shards.into_iter().map(Mutex::new).collect(),
            done_count: AtomicUsize::new(0),
            kills: AtomicU32::new(0),
            finished: AtomicBool::new(false),
            failure: Mutex::new(None),
            start: Instant::now(),
            max_wall: cfg.max_wall,
        })
    }

    /// Number of shards (= worker slots this job can use in parallel).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of application ranks.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `(done ranks, total ranks)` — a cheap progress probe.
    pub fn progress(&self) -> (usize, usize) {
        (self.done_count.load(Ordering::Relaxed), self.n)
    }

    /// Injected/earned crash count so far.
    pub fn kills_fired(&self) -> u32 {
        self.kills.load(Ordering::Relaxed)
    }

    /// One sweep over shard `shard` (see the module docs for the four
    /// sweep stages). Returns true if anything progressed. Non-blocking
    /// with respect to other drivers: a shard currently swept by
    /// another thread is skipped (`false`), which is what lets a shared
    /// pool serve many jobs fairly without convoying on a busy one.
    pub fn sweep(&self, shard: usize) -> bool {
        let Some(mut slots) = self.shards[shard].try_lock() else {
            return false;
        };
        let mut progressed = false;
        for slot in slots.iter_mut() {
            // 1. Drain the fabric inbox as one batch (one delivery
            // acquisition, coalesced acks).
            let mut batch = Vec::new();
            while let Ok(env) = slot.endpoint.try_recv() {
                batch.push(env);
            }
            if !batch.is_empty() {
                slot.kernel.ingest_batch(batch);
                progressed = true;
            }
            if !slot.done {
                if self
                    .failures
                    .should_kill(slot.rank, slot.incarnation, slot.step)
                {
                    self.kills.fetch_add(1, Ordering::Relaxed);
                    self.crash_and_respawn(slot);
                    progressed = true;
                } else if slot.kernel.is_fenced() || slot.kernel.is_desynced() {
                    // No detector runs in tasks mode, but the desync
                    // path (tracking merge rejected a gate-approved
                    // message) is still reachable; rebuild through the
                    // rollback path like the thread engine does.
                    self.kills.fetch_add(1, Ordering::Relaxed);
                    self.crash_and_respawn(slot);
                    progressed = true;
                } else {
                    // 3. Poll up to the budget.
                    for _ in 0..POLL_BUDGET {
                        let mut ctx = TaskCtx::for_kernel(&slot.kernel, slot.step);
                        match self.app.poll(&mut ctx, &mut slot.state) {
                            Ok(TaskPoll::Pending) => break,
                            Ok(TaskPoll::Step) => {
                                slot.step += 1;
                                if slot.kernel.checkpoint_due(slot.step) {
                                    slot.kernel.do_checkpoint(
                                        lclog_wire::encode_to_vec(&slot.state),
                                        slot.step,
                                    );
                                }
                                progressed = true;
                                // Kills fire on step boundaries; leave
                                // the budget so the next sweep's kill
                                // check sees the new step promptly.
                                if self.failures.should_kill(
                                    slot.rank,
                                    slot.incarnation,
                                    slot.step,
                                ) {
                                    break;
                                }
                            }
                            Ok(TaskPoll::Done) => {
                                self.sink
                                    .emit(slot.rank, EventKind::Done { step: slot.step });
                                // A final checkpoint lets every peer
                                // release the last log entries
                                // referring to us.
                                slot.kernel.do_checkpoint(
                                    lclog_wire::encode_to_vec(&slot.state),
                                    slot.step,
                                );
                                slot.digest = self.app.digest(&slot.state);
                                let snap = slot.kernel.snapshot();
                                slot.stats.merge(&snap.stats);
                                slot.data_plane.merge(&snap.data_plane);
                                slot.done = true;
                                self.done_count.fetch_add(1, Ordering::Relaxed);
                                progressed = true;
                                break;
                            }
                            Err(Fault::Shutdown) => break,
                            Err(_) => {
                                self.kills.fetch_add(1, Ordering::Relaxed);
                                self.crash_and_respawn(slot);
                                progressed = true;
                                break;
                            }
                        }
                    }
                }
            }
            // 4. Timers, resync-request drain, rollback rebroadcast.
            // Done ranks keep ticking: the cooperative
            // `serve_until_shutdown`.
            slot.kernel.tick();
        }
        progressed
    }

    /// The leader duties, run once per sweep round by exactly one
    /// driver: release everything in flight, advance virtual time,
    /// check completion, arm the watchdog. Returns true if held frames
    /// moved.
    pub fn advance(&self) -> bool {
        let progressed = self.net.held_deliver_all() > 0;
        self.clock.advance(SWEEP_ADVANCE);
        if self.done_count.load(Ordering::Relaxed) == self.n {
            self.finished.store(true, Ordering::Release);
        } else if self.start.elapsed() > self.max_wall {
            *self.failure.lock() = Some(format!(
                "tasks watchdog fired after {:?} (protocol {}, {} ranks, {} shards)",
                self.max_wall,
                self.protocol,
                self.n,
                self.shards.len()
            ));
            self.finished.store(true, Ordering::Release);
        }
        progressed
    }

    /// True once every rank is done (or the watchdog fired). Sweeping
    /// a finished job is a no-op.
    pub fn is_finished(&self) -> bool {
        self.finished.load(Ordering::Acquire)
    }

    /// Assemble the run's [`RunReport`] (or the watchdog failure).
    /// Call after [`TaskJob::is_finished`]; a job-owned replicator is
    /// drained and joined here, a host-owned one is left running and
    /// only snapshotted.
    pub fn report(&self) -> Result<RunReport, String> {
        if self.owns_replicator {
            if let Some(repl) = &self.replicator {
                repl.finish();
            }
        }
        if let Some(msg) = self.failure.lock().clone() {
            return Err(msg);
        }
        let mut digests = vec![0u64; self.n];
        let mut per_rank_stats = vec![TrackingStats::default(); self.n];
        let mut per_rank_data_plane = vec![DataPlaneStats::default(); self.n];
        for shard in &self.shards {
            for slot in shard.lock().iter() {
                debug_assert!(slot.done, "report taken with an unfinished rank");
                digests[slot.rank] = slot.digest;
                per_rank_stats[slot.rank] = slot.stats.clone();
                per_rank_data_plane[slot.rank] = slot.data_plane.clone();
            }
        }
        let mut stats = TrackingStats::default();
        for s in &per_rank_stats {
            stats.merge(s);
        }
        let mut data_plane = DataPlaneStats::default();
        for d in &per_rank_data_plane {
            data_plane.merge(d);
        }
        Ok(RunReport {
            digests,
            per_rank_stats,
            stats,
            wall: self.start.elapsed(),
            kills: self.kills.load(Ordering::Relaxed),
            net_msgs: self.net.stats().msgs_sent(),
            net_bytes: self.net.stats().bytes_sent(),
            retransmits: self.net.stats().retransmits(),
            chaos_dropped: self.net.stats().chaos_dropped(),
            chaos_duplicated: self.net.stats().chaos_duplicated(),
            chaos_corrupted: self.net.stats().chaos_corrupted(),
            per_rank_data_plane,
            data_plane,
            timeline: self.sink.take(),
            detector: None,
            replicator: self.replicator.as_ref().map(|r| r.stats()),
        })
    }

    /// Garbage-collect every checkpoint generation this job wrote,
    /// returning how many were deleted. For hosts retiring a tenant
    /// whose report has been fetched — a job's ranks never restore
    /// after that, and a long-running service must not accumulate dead
    /// tenants' generations.
    pub fn clear_generations(&self) -> usize {
        (0..self.n).map(|rank| self.ckpts.clear_rank(rank)).sum()
    }

    /// Crash `slot`'s incarnation and bring up its successor through
    /// the normal rollback path — the tasks-mode equivalent of the
    /// thread engine's `crash` + respawn cycle, including node loss
    /// (`wipe`): local generations die with the node and the respawn
    /// restores from the remote manifest.
    fn crash_and_respawn(&self, slot: &mut Slot<A>) {
        let n = self.n;
        let kill = self.failures.kill_for(slot.rank, slot.incarnation);
        let wipe = kill.map(|k| k.wipe).unwrap_or(false);
        let corrupt_remote = kill.map(|k| k.corrupt_remote).unwrap_or(false);
        let global_rank = self.rank_base + slot.rank;
        self.sink.emit(slot.rank, EventKind::Crashed { step: slot.step });
        self.net.kill(slot.rank);
        // Flush held frames toward the dead slot — they are dropped at
        // delivery, reproducing the thread engine's loss of in-flight
        // messages at a crash (survivors resend from their logs).
        for src in 0..n + 1 {
            while self.net.held_deliver(src, slot.rank) {}
        }
        let snap = slot.kernel.snapshot();
        slot.stats.merge(&snap.stats);
        slot.data_plane.merge(&snap.data_plane);
        // Node loss: the local store dies with the node. Let the
        // replicator drain before the replacement comes up — the
        // respawn must not restore against a manifest staler than what
        // survivors can still replay. For the torn-upload variant,
        // then damage the newest remote generation, which after the
        // drain is the one the victim just checkpointed.
        if wipe {
            if let Some(repl) = &self.replicator {
                repl.wait_synced(Duration::from_secs(2));
                if corrupt_remote {
                    repl.corrupt_newest_remote_generation(global_rank);
                }
            }
            let gens = self.ckpts.clear_rank(slot.rank);
            self.sink
                .emit(slot.rank, EventKind::StoreWiped { generations: gens });
        }
        slot.incarnation += 1;
        slot.endpoint = self.net.respawn(slot.rank);
        let mut kernel = Kernel::new(
            slot.rank,
            n,
            self.run_cfg.clone(),
            self.net.clone(),
            self.ckpts.clone(),
        );
        kernel.set_incarnation(slot.incarnation);
        kernel.set_event_sink(self.sink.clone());
        self.sink.emit(
            slot.rank,
            EventKind::Spawned {
                incarnation: slot.incarnation,
            },
        );
        let mut image = kernel.load_checkpoint();
        if image.is_none() {
            // An empty local store after a death is the node-loss
            // signature: pull the newest fully-certified generation
            // from the remote (manifests speak global rank), then read
            // it back as usual.
            if let Some(repl) = &self.replicator {
                if repl
                    .restore_rank(global_rank, self.raw_storage.as_ref())
                    .is_some()
                {
                    image = kernel.load_checkpoint();
                }
            }
        }
        // An image whose protocol or application state does not decode
        // is treated like no image at all: restart from the initial
        // state and roll forward through recovery (restore leaves the
        // kernel untouched on error).
        let restored = image.and_then(|image| {
            let (step, app_bytes) = kernel.restore(image).ok()?;
            let state = lclog_wire::decode_from_slice(&app_bytes).ok()?;
            Some((step, state))
        });
        let (step, state) = restored.unwrap_or_else(|| (0u64, self.app.init(slot.rank, n)));
        kernel.begin_recovery();
        slot.kernel = kernel;
        slot.state = state;
        slot.step = step;
    }
}

/// Reject configuration knobs the tasks engine cannot honour, with an
/// error naming the knob and the alternative.
fn validate(cfg: &ClusterConfig) -> Result<(), String> {
    if cfg.run.protocol.uses_event_logger() {
        return Err(format!(
            "protocol {} needs the event-logger service thread; use the thread engine",
            cfg.run.protocol
        ));
    }
    if cfg.run.detector.is_some() {
        return Err(
            "detected failures are not supported in tasks mode; use the thread engine".into(),
        );
    }
    if cfg.net.chaos.is_some() {
        return Err(
            "fabric chaos injection rides the courier model, which tasks mode replaces \
             with held delivery; use the thread engine"
                .into(),
        );
    }
    if matches!(
        cfg.net.delivery,
        DeliveryModel::Delayed { .. } | DeliveryModel::SharedBus { .. }
    ) {
        return Err(
            "latency delivery models are not honoured in tasks mode (the fabric is \
             forced to held delivery); use the thread engine"
                .into(),
        );
    }
    Ok(())
}

/// Run `app` on `cfg.n` ranks as cooperative tasks on a dedicated
/// sharded worker pool (see the module docs for the sweep loop and the
/// list of configurations that require the thread engine instead).
pub fn run_tasks<A: TaskApp>(cfg: &ClusterConfig, app: A) -> Result<RunReport, String> {
    let job = TaskJob::new(cfg, app)?;
    std::thread::scope(|s| {
        for w in 0..job.shards() {
            let job = &job;
            s.spawn(move || loop {
                let mut progressed = job.sweep(w);
                if w == 0 && job.advance() {
                    progressed = true;
                }
                if job.is_finished() {
                    return;
                }
                if !progressed {
                    std::thread::yield_now();
                }
            });
        }
    });
    job.report()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, FailurePlan, RemoteConfig};
    use crate::config::{CheckpointPolicy, RunConfig};
    use lclog_core::ProtocolKind;
    use lclog_wire::impl_wire_struct;

    const TAG: u32 = 7;

    fn mix(mut z: u64) -> u64 {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[derive(Debug, Clone, PartialEq)]
    struct RingState {
        round: u64,
        sent: bool,
        acc: u64,
    }

    impl_wire_struct!(RingState { round, sent, acc });

    /// Neighbor-exchange ring: each round every rank sends one value
    /// right and folds one value from the left — all n messages of a
    /// round are in flight concurrently, so a round costs O(1) sweeps
    /// regardless of n.
    struct ExchangeRing {
        rounds: u64,
    }

    impl TaskApp for ExchangeRing {
        type State = RingState;

        fn init(&self, rank: Rank, _n: usize) -> RingState {
            RingState {
                round: 0,
                sent: false,
                acc: mix(rank as u64),
            }
        }

        fn poll(&self, ctx: &mut TaskCtx<'_>, st: &mut RingState) -> Result<TaskPoll, Fault> {
            if st.round >= self.rounds {
                return Ok(TaskPoll::Done);
            }
            let me = ctx.rank();
            let n = ctx.n();
            if !st.sent {
                let payload = mix(st.acc ^ st.round);
                ctx.send_value((me + 1) % n, TAG, &payload)?;
                st.sent = true;
            }
            let left = (me + n - 1) % n;
            match ctx.try_recv_value::<u64>(RecvSpec::from(left, TAG))? {
                Some((_, v)) => {
                    st.acc = mix(st.acc.wrapping_add(v));
                    st.sent = false;
                    st.round += 1;
                    Ok(TaskPoll::Step)
                }
                None => Ok(TaskPoll::Pending),
            }
        }

        fn digest(&self, st: &RingState) -> u64 {
            mix(st.acc ^ st.round)
        }
    }

    fn tasks_cfg(n: usize, kind: ProtocolKind) -> ClusterConfig {
        ClusterConfig::new(
            n,
            RunConfig::new(kind)
                .with_checkpoint(CheckpointPolicy::EverySteps(2))
                .with_engine(EngineMode::Tasks { workers: 2 }),
        )
        .with_max_wall(Duration::from_secs(30))
    }

    #[test]
    fn tasks_and_threads_agree_on_digests() {
        let app = || ExchangeRing { rounds: 6 };
        let tasks = run_tasks(&tasks_cfg(4, ProtocolKind::Tdi), app()).unwrap();
        let threads = Cluster::run(
            &ClusterConfig::new(
                4,
                RunConfig::new(ProtocolKind::Tdi)
                    .with_checkpoint(CheckpointPolicy::EverySteps(2)),
            ),
            BlockingTaskApp(app()),
        )
        .unwrap();
        assert_eq!(tasks.digests, threads.digests);
        assert_eq!(tasks.stats.delivers, threads.stats.delivers);
    }

    #[test]
    fn tasks_mode_recovers_to_clean_digests() {
        for kind in [ProtocolKind::Tdi, ProtocolKind::TdiSparse(8)] {
            let clean = run_tasks(&tasks_cfg(4, kind), ExchangeRing { rounds: 8 }).unwrap();
            let faulty = run_tasks(
                &tasks_cfg(4, kind).with_failures(FailurePlan::kill_at(1, 3)),
                ExchangeRing { rounds: 8 },
            )
            .unwrap();
            assert!(faulty.kills >= 1, "{kind}: the planned kill must fire");
            assert_eq!(
                faulty.digests, clean.digests,
                "{kind}: recovery must reproduce the fault-free digests"
            );
        }
    }

    #[test]
    fn tasks_mode_ships_to_remote_and_recovers_a_wiped_rank() {
        let clean = run_tasks(
            &tasks_cfg(4, ProtocolKind::Tdi),
            ExchangeRing { rounds: 8 },
        )
        .unwrap();
        let wiped = run_tasks(
            &tasks_cfg(4, ProtocolKind::Tdi)
                .with_remote(RemoteConfig::in_memory())
                .with_failures(FailurePlan::kill_wipe_at(2, 4)),
            ExchangeRing { rounds: 8 },
        )
        .unwrap();
        assert!(wiped.kills >= 1, "the wipe kill must fire");
        assert_eq!(
            wiped.digests, clean.digests,
            "node-loss recovery must reproduce the fault-free digests"
        );
        let repl = wiped.replicator.expect("remote run reports replicator stats");
        assert!(
            repl.objects_shipped > 0,
            "checkpoint generations must have shipped"
        );
        assert!(repl.restores >= 1, "the wipe must trigger a remote restore");
    }

    #[test]
    fn tasks_job_under_shared_env_uses_rank_namespace() {
        // Two jobs, one backend: rank namespaces keep their
        // generations apart, and retiring one GCs only its own.
        let backend: Arc<dyn StableStorage> = Arc::new(MemStore::new());
        let env = TasksEnv {
            storage: Arc::clone(&backend),
            replicator: None,
        };
        let run = |base: usize| {
            let cfg = tasks_cfg(3, ProtocolKind::Tdi).with_rank_base(base);
            let job = TaskJob::with_env(&cfg, ExchangeRing { rounds: 4 }, &env).unwrap();
            while !job.is_finished() {
                for w in 0..job.shards() {
                    job.sweep(w);
                }
                job.advance();
            }
            job
        };
        let a = run(0);
        let b = run(100);
        assert_eq!(
            a.report().unwrap().digests,
            b.report().unwrap().digests,
            "rank_base must not change the computation"
        );
        assert!(!backend.keys_with_prefix("ckpt/100/").is_empty());
        assert!(!backend.keys_with_prefix("ckpt/0/").is_empty());
        assert!(b.clear_generations() > 0);
        assert!(backend.keys_with_prefix("ckpt/100/").is_empty());
        assert!(
            !backend.keys_with_prefix("ckpt/0/").is_empty(),
            "retiring one tenant must not GC another's generations"
        );
    }

    /// Regression: a gate-approved message whose payload does not
    /// decode as the requested type used to abort the process with an
    /// `expect`; it is wire input, so it must surface as the typed
    /// [`Fault::Desync`] (crash-and-rebuild through rollback).
    #[test]
    fn undecodable_payload_is_a_typed_desync_not_an_abort() {
        let net = SimNet::new(3, NetConfig::direct());
        let store = CheckpointStore::new(Arc::new(MemStore::new()));
        let _ep0 = net.attach(0);
        let ep1 = net.attach(1);
        let k0 = Kernel::new(0, 2, RunConfig::new(ProtocolKind::Tdi), net.clone(), store.clone());
        let k1 = Kernel::new(1, 2, RunConfig::new(ProtocolKind::Tdi), net.clone(), store);
        // An empty payload can never decode as u64.
        k0.app_send(1, TAG, Bytes::new(), false);
        while let Ok(env) = ep1.try_recv() {
            k1.ingest(env);
        }
        let mut ctx = TaskCtx::for_kernel(&k1, 0);
        assert_eq!(
            ctx.try_recv_value::<u64>(RecvSpec::from(0, TAG)),
            Err(Fault::Desync)
        );
    }

    #[test]
    fn tasks_mode_rejects_service_protocols() {
        for kind in [ProtocolKind::Tel, ProtocolKind::Pessim] {
            let err = run_tasks(&tasks_cfg(3, kind), ExchangeRing { rounds: 2 }).unwrap_err();
            assert!(err.contains("event-logger"), "{kind}: {err}");
            assert!(err.contains("thread engine"), "{kind}: {err}");
        }
    }

    #[test]
    fn tasks_mode_rejects_detector_configs() {
        let mut cfg = tasks_cfg(3, ProtocolKind::Tdi);
        cfg.run = cfg.run.with_detector(crate::detector::DetectorConfig::default());
        let err = run_tasks(&cfg, ExchangeRing { rounds: 2 }).unwrap_err();
        assert!(err.contains("detected failures"), "{err}");
        assert!(err.contains("thread engine"), "{err}");
    }

    #[test]
    fn tasks_mode_rejects_chaos_fabric() {
        let chaos = lclog_simnet::ChaosConfig::seeded(7).with_drop(0.01);
        let cfg = tasks_cfg(3, ProtocolKind::Tdi).with_net(NetConfig::direct().with_chaos(chaos));
        let err = run_tasks(&cfg, ExchangeRing { rounds: 2 }).unwrap_err();
        assert!(err.contains("chaos"), "{err}");
        assert!(err.contains("thread engine"), "{err}");
    }

    #[test]
    fn tasks_mode_rejects_latency_delivery_models() {
        let delayed = NetConfig::delayed(
            Duration::from_micros(10),
            Duration::from_micros(1),
            Duration::ZERO,
            1,
        );
        let err = run_tasks(
            &tasks_cfg(3, ProtocolKind::Tdi).with_net(delayed),
            ExchangeRing { rounds: 2 },
        )
        .unwrap_err();
        assert!(err.contains("latency delivery"), "{err}");
        assert!(err.contains("thread engine"), "{err}");
        // Direct (the config default) and held are both fine: the held
        // fabric preserves their semantics under sweeps.
        assert!(run_tasks(
            &tasks_cfg(3, ProtocolKind::Tdi).with_net(NetConfig::held()),
            ExchangeRing { rounds: 2 },
        )
        .is_ok());
    }

    #[test]
    fn sparse_tasks_run_reports_frame_stats() {
        // n must be large enough that a dense vector dwarfs a delta
        // frame's fixed overhead (at n = 4 dense wins; sparse exists
        // for large n).
        let n = 32;
        let sparse = run_tasks(
            &tasks_cfg(n, ProtocolKind::TdiSparse(8)),
            ExchangeRing { rounds: 4 },
        )
        .unwrap();
        assert!(sparse.stats.full_frames > 0, "first frames are FULL");
        assert!(sparse.stats.delta_frames > 0, "steady state is deltas");
        let dense =
            run_tasks(&tasks_cfg(n, ProtocolKind::Tdi), ExchangeRing { rounds: 4 }).unwrap();
        assert!(
            sparse.stats.piggyback_bytes < dense.stats.piggyback_bytes,
            "sparse {} >= dense {}",
            sparse.stats.piggyback_bytes,
            dense.stats.piggyback_bytes
        );
    }
}
