use lclog_core::Rank;
use std::fmt;

/// Why a runtime call could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// This rank incarnation has been killed by the failure injector.
    /// Application code must propagate it (`?`) so the rank thread
    /// unwinds and its volatile state is genuinely lost.
    Killed,
    /// The cluster is shutting down (another rank aborted); unwind.
    Shutdown,
    /// The reliability layer exhausted its retransmit budget towards
    /// this peer: it has been silent across every backoff round. The
    /// cluster harness treats this like a crash (restore + `ROLLBACK`)
    /// so the operation is retried against whatever incarnation of the
    /// peer eventually answers, instead of hanging forever.
    ///
    /// Only surfaced when no detector is configured; with one, budget
    /// exhaustion feeds the detector instead.
    Unreachable(Rank),
    /// A membership view declared this very incarnation dead (a false
    /// suspicion caught it alive). The rank must drop its volatile
    /// state and rejoin through the normal rollback path — continuing
    /// would mix two incarnations' sends into one membership epoch.
    Fenced,
    /// The tracking layer's piggyback merge rejected a message the
    /// delivery gate had approved (e.g. a poisoned or stale piggyback
    /// admitted across an incarnation boundary). The protocol state on
    /// this rank can no longer be trusted, so the incarnation must
    /// drop volatile state and rebuild through the normal rollback
    /// path — it is a single-rank fault, not a process abort.
    Desync,
    /// A collective operation could not complete because its
    /// contribution pattern was violated — a participant died
    /// mid-collective, double-contributed, or a root supplied no
    /// value. Carries a short reason for diagnostics. Survivors treat
    /// it like an unreachable peer: unwind and retry the operation
    /// through the normal recovery path.
    Collective(&'static str),
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Killed => write!(f, "rank incarnation killed"),
            Fault::Shutdown => write!(f, "cluster shutting down"),
            Fault::Unreachable(peer) => {
                write!(f, "peer rank {peer} unreachable (retransmit budget exhausted)")
            }
            Fault::Fenced => {
                write!(f, "this incarnation was declared dead (fenced); must rejoin")
            }
            Fault::Desync => {
                write!(f, "tracking merge rejected a gate-approved message; rank desynchronized")
            }
            Fault::Collective(reason) => {
                write!(f, "collective operation failed: {reason}")
            }
        }
    }
}

impl std::error::Error for Fault {}

/// What an application step reports back to the runtime loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepStatus {
    /// More steps to run.
    Continue,
    /// The application has finished its computation.
    Done,
}
