//! Durable log shipping: an asynchronous replicator streaming sealed
//! checkpoint generations and log segments to a [`RemoteStore`], plus
//! the node-loss restore path that rebuilds a wiped local store from
//! the remote.
//!
//! The paper's recovery story keeps sender logs and checkpoints on
//! *local* stable storage; a failure that takes the disk with the
//! process is therefore unrecoverable — survivors have already
//! garbage-collected the log entries the dead rank's checkpoint
//! covered. The [`Replicator`] closes that gap without touching the
//! send hot path:
//!
//! * checkpoint writes and determinant appends are **offered** to the
//!   replicator via a non-blocking queue; a background thread ships
//!   them with a bounded in-flight window and
//!   [`RetryBackoff`] full-jitter
//!   retries;
//! * every shipped object is recorded in a CRC-checked [`Manifest`];
//!   an object is *fully certified* only when an intact manifest
//!   lists it and its stored bytes match the recorded CRC;
//! * when the backend stays down a **circuit breaker** opens:
//!   replication degrades to a bounded local spill buffer with byte
//!   accounting, shedding oldest already-checkpointed segments first,
//!   and **re-syncs against the manifest** when the backend returns;
//! * a respawned rank that finds its local store wiped calls
//!   [`Replicator::restore_rank`]: the newest fully-certified
//!   generation wins, a checksum failure falls back one generation,
//!   and the rank then rejoins through the normal ROLLBACK protocol.

use crate::backoff::RetryBackoff;
use crate::events::{EventKind, EventSink};
use lclog_core::Rank;
use lclog_stable::{
    CheckpointStore, Manifest, ManifestEntry, ObjectKind, RemoteError, RemoteStore, StableStorage,
    MANIFEST_KEY,
};
use lclog_wire::{crc32, varint};
use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs of the replication pipeline. The defaults are sized for the
/// miniature cluster runs of this reproduction (checkpoint images of
/// a few KiB every few steps).
#[derive(Debug, Clone)]
pub struct ReplicatorConfig {
    /// Byte bound on the spill buffer (pending objects plus open
    /// segment buffers). Shedding keeps usage at or below this.
    pub spill_limit_bytes: usize,
    /// Objects shipped per round before the inbox is re-checked —
    /// the bounded in-flight window.
    pub in_flight_window: usize,
    /// First retry backoff ceiling.
    pub retry_initial: Duration,
    /// Retry backoff cap.
    pub retry_cap: Duration,
    /// Put attempts per object per round before the round is declared
    /// failed.
    pub retry_limit: u32,
    /// Consecutive failed rounds before the circuit breaker opens.
    pub breaker_threshold: u32,
    /// How long an open breaker waits before probing the backend.
    pub breaker_cooldown: Duration,
    /// Seal an open log-segment buffer once it holds this many bytes.
    pub segment_flush_bytes: usize,
    /// Give up draining on shutdown after this long.
    pub drain_deadline: Duration,
    /// Wall-time budget for a node-loss restore.
    pub restore_deadline: Duration,
    /// Seed for retry jitter.
    pub seed: u64,
}

impl Default for ReplicatorConfig {
    fn default() -> Self {
        ReplicatorConfig {
            spill_limit_bytes: 256 * 1024,
            in_flight_window: 4,
            retry_initial: Duration::from_millis(1),
            retry_cap: Duration::from_millis(16),
            retry_limit: 3,
            breaker_threshold: 2,
            breaker_cooldown: Duration::from_millis(10),
            segment_flush_bytes: 4096,
            drain_deadline: Duration::from_secs(5),
            restore_deadline: Duration::from_secs(5),
            seed: 0x10C5_10C5,
        }
    }
}

impl ReplicatorConfig {
    /// Builder-style spill-buffer byte bound.
    pub fn with_spill_limit(mut self, bytes: usize) -> Self {
        self.spill_limit_bytes = bytes;
        self
    }

    /// Builder-style jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style breaker cooldown.
    pub fn with_breaker_cooldown(mut self, cooldown: Duration) -> Self {
        self.breaker_cooldown = cooldown;
        self
    }

    /// Builder-style segment flush threshold.
    pub fn with_segment_flush(mut self, bytes: usize) -> Self {
        self.segment_flush_bytes = bytes;
        self
    }
}

/// What the replicator did, threaded into
/// [`RunReport`](crate::RunReport).
#[derive(Debug, Clone, Default)]
pub struct ReplicatorStats {
    /// Objects (generations + segments + manifests) stored remotely.
    pub objects_shipped: u64,
    /// Payload bytes stored remotely (manifests excluded).
    pub bytes_shipped: u64,
    /// Failed remote attempts (each either retried or given up on).
    pub retries: u64,
    /// Total time spent sleeping in retry backoff.
    pub backoff: Duration,
    /// Times the circuit breaker opened (degraded-mode windows).
    pub degraded_windows: u32,
    /// Total wall time spent degraded.
    pub degraded: Duration,
    /// Peak bytes held in the spill buffer (after shedding — the
    /// configured bound is never exceeded).
    pub spill_peak_bytes: usize,
    /// Objects shed from the spill buffer under memory pressure.
    pub spill_shed: u64,
    /// Manifest re-syncs after the backend returned.
    pub resyncs: u32,
    /// Node-loss restores attempted.
    pub restores: u32,
    /// Total wall time spent restoring wiped ranks.
    pub restore_latency: Duration,
    /// Generations skipped during restores because their stored bytes
    /// failed certification (restore fell back one generation each).
    pub generations_skipped: u32,
    /// Objects still unshipped when the replicator shut down (0 means
    /// the remote holds everything the manifest promises).
    pub unsynced_at_exit: u64,
}

/// One object waiting to ship.
struct Item {
    kind: ObjectKind,
    key: String,
    bytes: Vec<u8>,
    seq: u64,
}

enum Work {
    Generation { key: String, bytes: Vec<u8> },
    Record { log: String, bytes: Vec<u8> },
}

/// An open per-log segment buffer: records accumulate until the flush
/// threshold seals them into one remote object.
#[derive(Default)]
struct SegBuf {
    records: Vec<Vec<u8>>,
    bytes: usize,
}

struct ShipState {
    /// Spill buffer of objects not yet stored remotely.
    pending: VecDeque<Item>,
    pending_bytes: usize,
    /// Open (unsealed) segment buffers per source log.
    open: BTreeMap<String, SegBuf>,
    open_bytes: usize,
    /// Everything successfully stored, keyed by remote key — the
    /// source of truth the manifest is generated from.
    ledger: BTreeMap<String, ManifestEntry>,
    next_seq: u64,
    /// Per-log segment counter (names the segment objects).
    seg_no: HashMap<String, u64>,
    /// Highest ship seq of any generation offered so far; segments
    /// older than this are "already checkpointed" and shed first.
    newest_gen_seq: Option<u64>,
    manifest_dirty: bool,
    consecutive_failed_rounds: u32,
    /// When the current degraded window opened (stats anchor).
    degraded_since: Option<Instant>,
    /// Open breaker: no shipping attempts before this instant.
    cooldown_until: Option<Instant>,
    drain_deadline: Option<Instant>,
}

struct Inner {
    remote: Arc<dyn RemoteStore>,
    cfg: ReplicatorConfig,
    /// Offers sent but not yet ingested by the shipping thread.
    queued: AtomicU64,
    state: Mutex<ShipState>,
    stats: Mutex<ReplicatorStats>,
    stop: AtomicBool,
    sink: EventSink,
    /// Rank used for replicator-side timeline events (the stable
    /// service slot).
    service_rank: Rank,
}

/// Handle to the background replication thread. The cluster harness
/// owns one per run; rank threads share it behind an `Arc`.
pub struct Replicator {
    inner: Arc<Inner>,
    tx: crossbeam::channel::Sender<Work>,
    thread: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Replicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator")
            .field("cfg", &self.inner.cfg)
            .finish_non_exhaustive()
    }
}

impl Replicator {
    /// Spawn the shipping thread against `remote`.
    pub fn spawn(
        remote: Arc<dyn RemoteStore>,
        cfg: ReplicatorConfig,
        sink: EventSink,
        service_rank: Rank,
    ) -> Arc<Self> {
        let (tx, rx) = crossbeam::channel::unbounded();
        let inner = Arc::new(Inner {
            remote,
            cfg,
            queued: AtomicU64::new(0),
            state: Mutex::new(ShipState {
                pending: VecDeque::new(),
                pending_bytes: 0,
                open: BTreeMap::new(),
                open_bytes: 0,
                ledger: BTreeMap::new(),
                next_seq: 0,
                seg_no: HashMap::new(),
                newest_gen_seq: None,
                manifest_dirty: false,
                consecutive_failed_rounds: 0,
                degraded_since: None,
                cooldown_until: None,
                drain_deadline: None,
            }),
            stats: Mutex::new(ReplicatorStats::default()),
            stop: AtomicBool::new(false),
            sink,
            service_rank,
        });
        let worker = Arc::clone(&inner);
        let thread = std::thread::Builder::new()
            .name("lclog-replicator".into())
            .spawn(move || worker.run(rx))
            .expect("spawn replicator thread");
        Arc::new(Replicator {
            inner,
            tx,
            thread: Mutex::new(Some(thread)),
        })
    }

    /// Offer a sealed checkpoint generation for shipping. Never
    /// blocks: the caller is on the checkpoint (hot) path.
    pub fn offer_generation(&self, key: &str, bytes: &[u8]) {
        self.inner.queued.fetch_add(1, Ordering::SeqCst);
        let _ = self.tx.send(Work::Generation {
            key: key.to_string(),
            bytes: bytes.to_vec(),
        });
    }

    /// Offer one appended log record (e.g. a TEL determinant batch)
    /// for segment shipping. Never blocks.
    pub fn offer_record(&self, log: &str, record: &[u8]) {
        self.inner.queued.fetch_add(1, Ordering::SeqCst);
        let _ = self.tx.send(Work::Record {
            log: log.to_string(),
            bytes: record.to_vec(),
        });
    }

    /// Snapshot the statistics so far.
    pub fn stats(&self) -> ReplicatorStats {
        self.inner.stats.lock().clone()
    }

    /// True when nothing is queued or pending and the manifest
    /// matches the ledger. Open segment buffers don't count: they
    /// seal on flush thresholds or at shutdown.
    pub fn is_synced(&self) -> bool {
        if self.inner.queued.load(Ordering::SeqCst) != 0 {
            return false;
        }
        let st = self.inner.state.lock();
        st.pending.is_empty() && !st.manifest_dirty
    }

    /// Poll until [`Replicator::is_synced`] or `timeout` elapses.
    /// Returns whether sync was reached.
    pub fn wait_synced(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while Instant::now() < deadline {
            if self.is_synced() {
                return true;
            }
            std::thread::sleep(Duration::from_micros(200));
        }
        self.is_synced()
    }

    /// Signal shutdown, let the thread drain (bounded by the
    /// configured drain deadline), and join it. Idempotent.
    pub fn finish(&self) {
        {
            let mut st = self.inner.state.lock();
            st.drain_deadline = Some(Instant::now() + self.inner.cfg.drain_deadline);
        }
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.lock().take() {
            let _ = t.join();
        }
    }

    /// Node-loss restore: install the newest *fully certified*
    /// checkpoint generation of `rank` from the remote into `local`,
    /// falling back one generation per checksum failure. Returns the
    /// restored version, or `None` when no certified generation could
    /// be fetched (the rank then rejoins from its initial state).
    pub fn restore_rank(&self, rank: Rank, local: &dyn StableStorage) -> Option<u64> {
        let started = Instant::now();
        let deadline = started + self.inner.cfg.restore_deadline;
        let prefix = CheckpointStore::prefix(rank);
        let mut skipped = 0u32;
        let mut restored = None;
        if let Some(manifest) = self.fetch_manifest(deadline) {
            for entry in manifest.generations_with_prefix(&prefix) {
                match self.fetch_object(&entry.key, deadline) {
                    Some(blob) if Manifest::certifies(entry, &blob) => {
                        local.put(&entry.key, &blob);
                        restored = CheckpointStore::parse_version(&entry.key);
                        break;
                    }
                    _ => skipped += 1,
                }
            }
        }
        {
            let mut stats = self.inner.stats.lock();
            stats.restores += 1;
            stats.restore_latency += started.elapsed();
            stats.generations_skipped += skipped;
        }
        if let Some(version) = restored {
            self.inner
                .sink
                .emit(rank, EventKind::RemoteRestored { version, skipped });
        }
        restored
    }

    /// Fault-injection hook: damage the newest remote generation of
    /// `rank` in place (one flipped bit), modeling an upload torn by
    /// the node's death. The manifest CRC no longer certifies the
    /// object, so a subsequent restore must fall back one generation.
    /// Returns true when an object was damaged.
    pub fn corrupt_newest_remote_generation(&self, rank: Rank) -> bool {
        self.corrupt_newest_inner(rank).is_some()
    }

    fn corrupt_newest_inner(&self, rank: Rank) -> Option<()> {
        let deadline = Instant::now() + Duration::from_secs(1);
        let prefix = CheckpointStore::prefix(rank);
        let newest = loop {
            match self.inner.remote.list(&prefix) {
                Ok(keys) => break keys.into_iter().max()?,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_micros(200));
                }
                Err(_) => return None,
            }
        };
        let mut blob = self.fetch_object(&newest, deadline)?;
        if blob.is_empty() {
            return None;
        }
        let mid = blob.len() / 2;
        blob[mid] ^= 0x20;
        let mut backoff = RetryBackoff::new(
            self.inner.cfg.retry_initial,
            self.inner.cfg.retry_cap,
            self.inner.cfg.seed,
        );
        loop {
            match self.inner.remote.put(&newest, &blob) {
                Ok(()) => return Some(()),
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(backoff.next_wait());
                }
                Err(_) => return None,
            }
        }
    }

    fn fetch_manifest(&self, deadline: Instant) -> Option<Manifest> {
        let blob = self.fetch_object(MANIFEST_KEY, deadline)?;
        Manifest::decode(&blob)
    }

    /// Get with retry until `deadline`; `None` for absent objects or
    /// an unyielding backend.
    fn fetch_object(&self, key: &str, deadline: Instant) -> Option<Vec<u8>> {
        let mut backoff = RetryBackoff::new(
            self.inner.cfg.retry_initial,
            self.inner.cfg.retry_cap,
            self.inner.cfg.seed ^ crc32(key.as_bytes()) as u64,
        );
        loop {
            match self.inner.remote.get(key) {
                Ok(found) => return found,
                Err(_) if Instant::now() < deadline => {
                    let wait = backoff.next_wait();
                    {
                        let mut stats = self.inner.stats.lock();
                        stats.retries += 1;
                        stats.backoff += wait;
                    }
                    std::thread::sleep(wait);
                }
                Err(_) => return None,
            }
        }
    }
}

impl Inner {
    fn run(self: Arc<Self>, rx: crossbeam::channel::Receiver<Work>) {
        loop {
            // Ingest everything queued, waiting briefly when idle.
            match rx.recv_timeout(Duration::from_micros(500)) {
                Ok(work) => {
                    self.ingest(work);
                    while let Ok(more) = rx.try_recv() {
                        self.ingest(more);
                    }
                }
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {}
            }
            let stopping =
                self.stop.load(Ordering::SeqCst) && self.queued.load(Ordering::SeqCst) == 0;
            if stopping {
                self.flush_all_segments();
            }
            self.shed_to_bound();
            self.note_spill_peak();
            self.ship_round();
            if stopping && self.try_exit() {
                return;
            }
        }
    }

    /// Drained or out of time? Record the exit stats and say so.
    fn try_exit(&self) -> bool {
        let (done, leftovers, degraded_since) = {
            let mut st = self.state.lock();
            let drained = st.pending.is_empty() && !st.manifest_dirty;
            let expired = st
                .drain_deadline
                .map(|d| Instant::now() >= d)
                .unwrap_or(false);
            if !(drained || expired) {
                return false;
            }
            (true, st.pending.len() as u64, st.degraded_since.take())
        };
        let mut stats = self.stats.lock();
        stats.unsynced_at_exit = leftovers;
        if let Some(since) = degraded_since {
            stats.degraded += since.elapsed();
        }
        done
    }

    fn ingest(&self, work: Work) {
        self.queued.fetch_sub(1, Ordering::SeqCst);
        let mut st = self.state.lock();
        match work {
            Work::Generation { key, bytes } => {
                let seq = st.next_seq;
                st.next_seq += 1;
                st.newest_gen_seq = Some(seq);
                st.pending_bytes += bytes.len();
                st.pending.push_back(Item {
                    kind: ObjectKind::Generation,
                    key,
                    bytes,
                    seq,
                });
            }
            Work::Record { log, bytes } => {
                st.open_bytes += bytes.len();
                let buf = st.open.entry(log.clone()).or_default();
                buf.bytes += bytes.len();
                buf.records.push(bytes);
                if buf.bytes >= self.cfg.segment_flush_bytes {
                    Self::seal_segment(&mut st, &log);
                }
            }
        }
    }

    /// Seal the open buffer of `log` into a pending segment object.
    fn seal_segment(st: &mut ShipState, log: &str) {
        let Some(buf) = st.open.remove(log) else {
            return;
        };
        if buf.records.is_empty() {
            return;
        }
        st.open_bytes -= buf.bytes;
        let mut body = Vec::with_capacity(buf.bytes + 16);
        varint::write_u64(&mut body, buf.records.len() as u64);
        for rec in &buf.records {
            varint::write_u64(&mut body, rec.len() as u64);
            body.extend_from_slice(rec);
        }
        let no = st.seg_no.entry(log.to_string()).or_insert(0);
        let key = format!("seg/{log}/{no:020}");
        *no += 1;
        let seq = st.next_seq;
        st.next_seq += 1;
        st.pending_bytes += body.len();
        st.pending.push_back(Item {
            kind: ObjectKind::Segment,
            key,
            bytes: body,
            seq,
        });
    }

    fn flush_all_segments(&self) {
        let mut st = self.state.lock();
        let logs: Vec<String> = st.open.keys().cloned().collect();
        for log in logs {
            Self::seal_segment(&mut st, &log);
        }
    }

    /// Enforce the spill byte bound. Shed order: (1) segments already
    /// covered by a newer checkpoint generation, oldest first — the
    /// generation embeds the sender-log state they protect; (2)
    /// generations superseded by a newer pending generation under the
    /// same rank prefix, oldest first; (3) remaining segments, oldest
    /// first. The newest pending generation per rank is never shed:
    /// it is exactly what a node-loss restore needs.
    fn shed_to_bound(&self) {
        let limit = self.cfg.spill_limit_bytes;
        let mut st = self.state.lock();
        if st.pending_bytes + st.open_bytes <= limit {
            return;
        }
        let newest_gen_seq = st.newest_gen_seq;
        let mut newest_per_prefix: HashMap<String, u64> = HashMap::new();
        for item in st.pending.iter() {
            if item.kind == ObjectKind::Generation {
                let e = newest_per_prefix
                    .entry(gen_prefix(&item.key))
                    .or_insert(item.seq);
                *e = (*e).max(item.seq);
            }
        }
        let mut shed = 0u64;
        for pass in 0..3u8 {
            let mut i = 0;
            while i < st.pending.len() && st.pending_bytes + st.open_bytes > limit {
                let item = &st.pending[i];
                let sheddable = match (pass, item.kind) {
                    (0, ObjectKind::Segment) => {
                        newest_gen_seq.map(|g| item.seq < g).unwrap_or(false)
                    }
                    (1, ObjectKind::Generation) => newest_per_prefix
                        .get(&gen_prefix(&item.key))
                        .map(|&newest| item.seq < newest)
                        .unwrap_or(false),
                    (2, ObjectKind::Segment) => true,
                    _ => false,
                };
                if sheddable {
                    let dropped = st.pending.remove(i).expect("index in range");
                    st.pending_bytes -= dropped.bytes.len();
                    shed += 1;
                } else {
                    i += 1;
                }
            }
            if st.pending_bytes + st.open_bytes <= limit {
                break;
            }
        }
        drop(st);
        if shed > 0 {
            self.stats.lock().spill_shed += shed;
        }
    }

    fn note_spill_peak(&self) {
        let used = {
            let st = self.state.lock();
            st.pending_bytes + st.open_bytes
        };
        let mut stats = self.stats.lock();
        stats.spill_peak_bytes = stats.spill_peak_bytes.max(used);
    }

    /// One shipping round: respect the breaker, then store up to
    /// `in_flight_window` objects followed by the manifest.
    fn ship_round(&self) {
        let (breaker_open, in_cooldown, has_work) = {
            let st = self.state.lock();
            let open = st.consecutive_failed_rounds >= self.cfg.breaker_threshold;
            let cooling = open
                && st
                    .cooldown_until
                    .map(|until| Instant::now() < until)
                    .unwrap_or(false);
            (open, cooling, !st.pending.is_empty() || st.manifest_dirty)
        };
        if !has_work || in_cooldown {
            return; // degraded cooldown: spill only, block no one.
        }
        // Closed breaker, or a half-open probe after the cooldown.
        let window = if breaker_open {
            1
        } else {
            self.cfg.in_flight_window
        };
        let mut shipped_any = false;
        for _ in 0..window {
            let Some(item) = self.state.lock().pending.pop_front() else {
                break;
            };
            match self.put_with_retries(&item.key, &item.bytes) {
                Ok(()) => {
                    shipped_any = true;
                    {
                        let mut st = self.state.lock();
                        st.pending_bytes -= item.bytes.len();
                        st.manifest_dirty = true;
                        let entry = ManifestEntry {
                            kind: item.kind,
                            key: item.key.clone(),
                            crc: crc32(&item.bytes),
                            len: item.bytes.len() as u64,
                            seq: item.seq,
                        };
                        st.ledger.insert(item.key, entry);
                    }
                    let mut stats = self.stats.lock();
                    stats.objects_shipped += 1;
                    stats.bytes_shipped += item.bytes.len() as u64;
                }
                Err(_) => {
                    self.state.lock().pending.push_front(item);
                    self.note_round_failed();
                    return;
                }
            }
        }
        if shipped_any && breaker_open {
            // The probe succeeded: close the breaker and re-sync.
            self.close_breaker_and_resync();
        }
        // Ship the manifest reflecting the ledger.
        let dirty = self.state.lock().manifest_dirty;
        if dirty {
            let manifest = {
                let st = self.state.lock();
                Manifest {
                    entries: st.ledger.values().cloned().collect(),
                }
            };
            match self.put_with_retries(MANIFEST_KEY, &manifest.encode()) {
                Ok(()) => {
                    let was_open = {
                        let mut st = self.state.lock();
                        let open = st.consecutive_failed_rounds >= self.cfg.breaker_threshold;
                        st.manifest_dirty = false;
                        st.consecutive_failed_rounds = 0;
                        open
                    };
                    if was_open {
                        self.close_breaker_and_resync();
                    }
                    self.stats.lock().objects_shipped += 1;
                }
                Err(_) => self.note_round_failed(),
            }
        } else if !breaker_open {
            self.state.lock().consecutive_failed_rounds = 0;
        }
    }

    fn put_with_retries(&self, key: &str, bytes: &[u8]) -> Result<(), RemoteError> {
        let mut backoff = RetryBackoff::new(
            self.cfg.retry_initial,
            self.cfg.retry_cap,
            self.cfg.seed ^ crc32(key.as_bytes()) as u64,
        );
        let mut last = RemoteError::Transient;
        for attempt in 0..self.cfg.retry_limit.max(1) {
            match self.remote.put(key, bytes) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    last = e;
                    self.stats.lock().retries += 1;
                    if attempt + 1 < self.cfg.retry_limit {
                        let wait = backoff.next_wait();
                        self.stats.lock().backoff += wait;
                        std::thread::sleep(wait);
                    }
                }
            }
        }
        Err(last)
    }

    fn note_round_failed(&self) {
        let entered = {
            let mut st = self.state.lock();
            st.consecutive_failed_rounds = st.consecutive_failed_rounds.saturating_add(1);
            let open = st.consecutive_failed_rounds >= self.cfg.breaker_threshold;
            if open {
                // (Re)start the cooldown; a failed half-open probe
                // waits a full cooldown before the next probe. The
                // degraded window anchor is set only once.
                st.cooldown_until = Some(Instant::now() + self.cfg.breaker_cooldown);
            }
            if open && st.degraded_since.is_none() {
                st.degraded_since = Some(Instant::now());
                Some(st.pending_bytes + st.open_bytes)
            } else {
                None
            }
        };
        if let Some(spill_bytes) = entered {
            self.stats.lock().degraded_windows += 1;
            self.sink
                .emit(self.service_rank, EventKind::DegradedEntered { spill_bytes });
        }
    }

    /// The backend answered again: close the breaker, account the
    /// degraded window, and re-sync the manifest against what the
    /// remote actually holds — ledger entries whose objects vanished
    /// during the outage are dropped so the manifest never promises
    /// bytes the remote cannot serve.
    fn close_breaker_and_resync(&self) {
        let since = {
            let mut st = self.state.lock();
            st.consecutive_failed_rounds = 0;
            st.cooldown_until = None;
            st.degraded_since.take()
        };
        let Some(since) = since else { return };
        let window = since.elapsed();
        {
            let mut stats = self.stats.lock();
            stats.degraded += window;
            stats.resyncs += 1;
        }
        if let Ok(listed) = self.remote.list("") {
            let mut st = self.state.lock();
            let vanished: Vec<String> = st
                .ledger
                .keys()
                .filter(|k| !listed.contains(k))
                .cloned()
                .collect();
            for key in vanished {
                st.ledger.remove(&key);
            }
        }
        self.state.lock().manifest_dirty = true;
        self.sink.emit(
            self.service_rank,
            EventKind::DegradedExited {
                ms: window.as_millis() as u64,
            },
        );
    }
}

/// Prefix of a generation key up to and including the version marker
/// (`ckpt/{rank}/v`), grouping generations by rank.
fn gen_prefix(key: &str) -> String {
    match key.rfind('v') {
        Some(i) => key[..=i].to_string(),
        None => key.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_simnet::StorageChaos;
    use lclog_stable::{FaultyRemote, MemRemote, MemStore};

    fn quick_cfg() -> ReplicatorConfig {
        ReplicatorConfig {
            retry_initial: Duration::from_micros(100),
            retry_cap: Duration::from_micros(800),
            breaker_cooldown: Duration::from_millis(2),
            drain_deadline: Duration::from_secs(2),
            restore_deadline: Duration::from_secs(2),
            ..ReplicatorConfig::default()
        }
    }

    fn gen_blob(tag: u8, len: usize) -> Vec<u8> {
        vec![tag; len]
    }

    #[test]
    fn ships_generations_and_manifest_certifies_them() {
        let remote = Arc::new(MemRemote::new());
        let repl = Replicator::spawn(
            Arc::clone(&remote) as Arc<dyn RemoteStore>,
            quick_cfg(),
            EventSink::disabled(),
            4,
        );
        for v in 1..=3u64 {
            repl.offer_generation(&CheckpointStore::key(0, v), &gen_blob(v as u8, 64));
        }
        repl.offer_record("evt", b"determinant batch one");
        repl.offer_record("evt", b"determinant batch two");
        repl.finish();
        let stats = repl.stats();
        assert_eq!(stats.unsynced_at_exit, 0);
        assert!(stats.objects_shipped >= 4, "3 gens + 1 segment + manifests");
        let manifest =
            Manifest::decode(&remote.get(MANIFEST_KEY).unwrap().unwrap()).expect("intact");
        assert_eq!(manifest.entries.len(), 4);
        for entry in &manifest.entries {
            let blob = remote.get(&entry.key).unwrap().expect("object present");
            assert!(Manifest::certifies(entry, &blob), "{}", entry.key);
        }
    }

    #[test]
    fn restore_prefers_newest_and_falls_back_past_corruption() {
        let remote = Arc::new(MemRemote::new());
        let repl = Replicator::spawn(
            Arc::clone(&remote) as Arc<dyn RemoteStore>,
            quick_cfg(),
            EventSink::disabled(),
            4,
        );
        for v in 1..=3u64 {
            repl.offer_generation(&CheckpointStore::key(2, v), &gen_blob(v as u8, 128));
        }
        assert!(repl.wait_synced(Duration::from_secs(2)));

        let local = MemStore::new();
        assert_eq!(repl.restore_rank(2, &local), Some(3));
        assert_eq!(
            local.get(&CheckpointStore::key(2, 3)).as_deref(),
            Some(&gen_blob(3, 128)[..])
        );

        // Damage the newest remote generation: restore must fall back.
        assert!(repl.corrupt_newest_remote_generation(2));
        let wiped = MemStore::new();
        assert_eq!(repl.restore_rank(2, &wiped), Some(2));
        assert!(wiped.get(&CheckpointStore::key(2, 3)).is_none());
        let stats = repl.stats();
        assert!(stats.generations_skipped >= 1);
        repl.finish();
    }

    #[test]
    fn restore_of_unknown_rank_is_none() {
        let remote = Arc::new(MemRemote::new());
        let repl = Replicator::spawn(
            Arc::clone(&remote) as Arc<dyn RemoteStore>,
            quick_cfg(),
            EventSink::disabled(),
            4,
        );
        repl.offer_generation(&CheckpointStore::key(0, 1), &gen_blob(1, 32));
        assert!(repl.wait_synced(Duration::from_secs(2)));
        let local = MemStore::new();
        assert_eq!(repl.restore_rank(7, &local), None);
        repl.finish();
    }

    #[test]
    fn outage_opens_breaker_bounds_spill_and_resyncs_after() {
        let remote = Arc::new(FaultyRemote::new(MemRemote::new(), StorageChaos::seeded(9)));
        remote.set_available(false);
        let spill_limit = 2048;
        let cfg = quick_cfg().with_spill_limit(spill_limit);
        let sink = EventSink::recording();
        let repl = Replicator::spawn(
            Arc::clone(&remote) as Arc<dyn RemoteStore>,
            cfg,
            sink.clone(),
            4,
        );
        // Far more bytes than the spill bound, across two ranks.
        for v in 1..=8u64 {
            for rank in 0..2usize {
                repl.offer_generation(&CheckpointStore::key(rank, v), &gen_blob(v as u8, 512));
            }
        }
        std::thread::sleep(Duration::from_millis(30));
        let mid = repl.stats();
        assert!(mid.degraded_windows >= 1, "breaker must have opened");
        assert!(
            mid.spill_peak_bytes <= spill_limit,
            "spill peak {} exceeds bound {}",
            mid.spill_peak_bytes,
            spill_limit
        );
        assert!(mid.spill_shed > 0, "old generations must have been shed");

        // Outage ends: the replicator must catch up and re-sync.
        remote.set_available(true);
        assert!(repl.wait_synced(Duration::from_secs(3)));
        repl.finish();
        let stats = repl.stats();
        assert_eq!(stats.unsynced_at_exit, 0);
        assert!(stats.resyncs >= 1);
        assert!(stats.degraded > Duration::ZERO);

        // The newest generation of each rank survived the shedding and
        // is certified on the remote.
        let manifest =
            Manifest::decode(&remote.inner().get(MANIFEST_KEY).unwrap().unwrap()).unwrap();
        for rank in 0..2usize {
            let gens = manifest.generations_with_prefix(&CheckpointStore::prefix(rank));
            assert!(!gens.is_empty(), "rank {rank} has no shipped generations");
            assert_eq!(gens[0].key, CheckpointStore::key(rank, 8));
            let blob = remote.inner().get(&gens[0].key).unwrap().unwrap();
            assert!(Manifest::certifies(gens[0], &blob));
        }
        let events = sink.take();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::DegradedEntered { .. })));
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::DegradedExited { .. })));
    }

    #[test]
    fn transient_errors_are_retried_through() {
        let chaos = StorageChaos::seeded(11).with_transient(0.3);
        let remote = Arc::new(FaultyRemote::new(MemRemote::new(), chaos));
        let repl = Replicator::spawn(
            Arc::clone(&remote) as Arc<dyn RemoteStore>,
            quick_cfg(),
            EventSink::disabled(),
            4,
        );
        for v in 1..=6u64 {
            repl.offer_generation(&CheckpointStore::key(1, v), &gen_blob(v as u8, 96));
        }
        repl.finish();
        let stats = repl.stats();
        assert_eq!(stats.unsynced_at_exit, 0);
        assert!(stats.retries > 0, "30% transients must cause retries");
        let manifest =
            Manifest::decode(&remote.inner().get(MANIFEST_KEY).unwrap().unwrap()).unwrap();
        let gens = manifest.generations_with_prefix(&CheckpointStore::prefix(1));
        assert_eq!(gens[0].key, CheckpointStore::key(1, 6));
    }

    #[test]
    fn segment_buffers_seal_at_flush_threshold() {
        let remote = Arc::new(MemRemote::new());
        let cfg = quick_cfg().with_segment_flush(64);
        let repl = Replicator::spawn(
            Arc::clone(&remote) as Arc<dyn RemoteStore>,
            cfg,
            EventSink::disabled(),
            4,
        );
        for i in 0..10 {
            repl.offer_record("det/0", format!("record number {i:04}").as_bytes());
        }
        repl.finish();
        assert_eq!(repl.stats().unsynced_at_exit, 0);
        let segs = remote.list("seg/det/0/").unwrap();
        assert!(segs.len() >= 2, "expected multiple sealed segments, got {segs:?}");
        let manifest = Manifest::decode(&remote.get(MANIFEST_KEY).unwrap().unwrap()).unwrap();
        for key in &segs {
            let entry = manifest.entries.iter().find(|e| &e.key == key).unwrap();
            assert_eq!(entry.kind, ObjectKind::Segment);
            let blob = remote.get(key).unwrap().unwrap();
            assert!(Manifest::certifies(entry, &blob));
        }
    }
}
