//! Behavioural tests of the simulated fabric: FIFO, reordering,
//! crash-loss semantics, incarnations, and traffic accounting.

use bytes::Bytes;
use lclog_simnet::{NetConfig, RecvError, SendError, SimNet};
use std::time::Duration;

const TICK: Duration = Duration::from_millis(500);

fn payload(tag: u8) -> Bytes {
    Bytes::copy_from_slice(&[tag])
}

#[test]
fn direct_delivery_roundtrip() {
    let net = SimNet::new(2, NetConfig::direct());
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    net.send(0, 1, payload(7)).unwrap();
    let env = ep1.recv_timeout(TICK).unwrap();
    assert_eq!(env.src, 0);
    assert_eq!(env.dst, 1);
    assert_eq!(env.seq, 1);
    assert_eq!(&env.payload[..], &[7]);
}

#[test]
fn per_pair_seq_increments() {
    let net = SimNet::new(2, NetConfig::direct());
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    for _ in 0..3 {
        net.send(0, 1, payload(0)).unwrap();
    }
    let seqs: Vec<u64> = (0..3).map(|_| ep1.recv_timeout(TICK).unwrap().seq).collect();
    assert_eq!(seqs, vec![1, 2, 3]);
}

#[test]
fn delayed_model_preserves_per_pair_fifo() {
    // Large jitter relative to base: cross-pair reordering is nearly
    // certain, but per-pair FIFO must hold exactly.
    let net = SimNet::new(3, NetConfig::delayed(
        Duration::from_micros(10),
        Duration::ZERO,
        Duration::from_millis(2),
        0xFEED,
    ));
    let _ep0 = net.attach(0);
    let _ep1 = net.attach(1);
    let ep2 = net.attach(2);
    const PER_SENDER: usize = 50;
    for i in 0..PER_SENDER {
        net.send(0, 2, payload(i as u8)).unwrap();
        net.send(1, 2, payload(i as u8)).unwrap();
    }
    let mut last_seq = [0u64; 2];
    for _ in 0..2 * PER_SENDER {
        let env = ep2.recv_timeout(TICK).unwrap();
        assert_eq!(
            env.seq,
            last_seq[env.src] + 1,
            "per-pair FIFO violated for src {}",
            env.src
        );
        last_seq[env.src] = env.seq;
    }
    assert_eq!(last_seq, [PER_SENDER as u64; 2]);
}

#[test]
fn delayed_model_reorders_across_pairs() {
    // With per-KiB cost, a huge message from rank 0 sent *before* a
    // tiny message from rank 1 should usually arrive after it.
    let net = SimNet::new(3, NetConfig::delayed(
        Duration::from_micros(10),
        Duration::from_micros(200),
        Duration::ZERO,
        1,
    ));
    let _ep0 = net.attach(0);
    let _ep1 = net.attach(1);
    let ep2 = net.attach(2);
    net.send(0, 2, Bytes::from(vec![0u8; 64 * 1024])).unwrap();
    net.send(1, 2, payload(1)).unwrap();
    let first = ep2.recv_timeout(TICK).unwrap();
    assert_eq!(first.src, 1, "small message should overtake the large one");
    let second = ep2.recv_timeout(TICK).unwrap();
    assert_eq!(second.src, 0);
}

#[test]
fn kill_drops_queued_and_future_messages() {
    let net = SimNet::new(2, NetConfig::direct());
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    net.send(0, 1, payload(1)).unwrap();
    net.kill(1);
    // Queued message is lost: the dead endpoint refuses to read.
    assert_eq!(ep1.recv_timeout(TICK).unwrap_err(), RecvError::Dead);
    assert!(!ep1.is_alive());
    // Sends to a dead rank succeed but are dropped.
    net.send(0, 1, payload(2)).unwrap();
    assert_eq!(net.stats().msgs_dropped_dead(), 1);
}

#[test]
fn respawn_gets_fresh_empty_inbox() {
    let net = SimNet::new(2, NetConfig::direct());
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    net.send(0, 1, payload(1)).unwrap();
    net.kill(1);
    let ep1b = net.respawn(1);
    assert_eq!(ep1b.incarnation(), 2);
    assert!(ep1b.is_alive());
    assert!(!ep1.is_alive());
    // Old queued message is gone; a fresh one arrives.
    assert_eq!(ep1b.try_recv().unwrap_err(), RecvError::Empty);
    net.send(0, 1, payload(9)).unwrap();
    let env = ep1b.recv_timeout(TICK).unwrap();
    assert_eq!(&env.payload[..], &[9]);
    // Fabric seq keeps counting across incarnations.
    assert_eq!(env.seq, 2);
}

#[test]
fn stale_endpoint_cannot_steal_new_incarnation_traffic() {
    let net = SimNet::new(2, NetConfig::direct());
    let _ep0 = net.attach(0);
    let ep1_old = net.attach(1);
    net.kill(1);
    let ep1_new = net.respawn(1);
    net.send(0, 1, payload(3)).unwrap();
    assert_eq!(ep1_old.recv_timeout(TICK).unwrap_err(), RecvError::Dead);
    assert_eq!(&ep1_new.recv_timeout(TICK).unwrap().payload[..], &[3]);
}

#[test]
fn send_to_bad_rank_errors() {
    let net = SimNet::new(2, NetConfig::direct());
    assert_eq!(net.send(0, 5, payload(0)).unwrap_err(), SendError::BadRank(5));
    assert_eq!(net.send(9, 1, payload(0)).unwrap_err(), SendError::BadRank(9));
}

#[test]
fn stats_account_for_traffic() {
    let net = SimNet::new(2, NetConfig::direct());
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    net.send(0, 1, Bytes::from(vec![0u8; 10])).unwrap();
    net.send(0, 1, Bytes::from(vec![0u8; 20])).unwrap();
    let _ = ep1.recv_timeout(TICK).unwrap();
    let _ = ep1.recv_timeout(TICK).unwrap();
    assert_eq!(net.stats().msgs_sent(), 2);
    assert_eq!(net.stats().bytes_sent(), 30);
    assert_eq!(net.stats().msgs_delivered(), 2);
    assert_eq!(net.stats().msgs_dropped_dead(), 0);
}

#[test]
fn courier_flushes_on_shutdown() {
    let ep1;
    {
        let net = SimNet::new(2, NetConfig::delayed(
            Duration::from_millis(5),
            Duration::ZERO,
            Duration::ZERO,
            7,
        ));
        let _ep0 = net.attach(0);
        ep1 = net.attach(1);
        for i in 0..10 {
            net.send(0, 1, payload(i)).unwrap();
        }
        // `net` (the only handle) drops here; the courier must flush
        // all ten messages before exiting.
    }
    let mut got = 0;
    while ep1.try_recv().is_ok() {
        got += 1;
    }
    assert_eq!(got, 10);
}

#[test]
fn timeout_when_no_traffic() {
    let net = SimNet::new(1, NetConfig::direct());
    let ep0 = net.attach(0);
    assert_eq!(
        ep0.recv_timeout(Duration::from_millis(10)).unwrap_err(),
        RecvError::Timeout
    );
}

#[test]
fn n_reports_slot_count() {
    let net = SimNet::new(5, NetConfig::direct());
    assert_eq!(net.n(), 5);
}

#[test]
fn self_send_works() {
    let net = SimNet::new(1, NetConfig::direct());
    let ep0 = net.attach(0);
    net.send(0, 0, payload(4)).unwrap();
    let env = ep0.recv_timeout(TICK).unwrap();
    assert_eq!(env.src, 0);
    assert_eq!(&env.payload[..], &[4]);
}

#[test]
fn shared_bus_serializes_transmissions() {
    // Two large frames submitted back-to-back: the second's delivery
    // is delayed by the first's transmission time on the shared
    // medium (even though they go to different receivers).
    let net = SimNet::new(3, NetConfig {
        delivery: lclog_simnet::DeliveryModel::SharedBus {
            latency: Duration::from_micros(10),
            bytes_per_sec: 10 * 1024 * 1024, // 10 MiB/s: 1 MiB ≈ 100 ms
        },
        chaos: None,
    });
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    let ep2 = net.attach(2);
    let big = Bytes::from(vec![0u8; 1024 * 1024]);
    let start = std::time::Instant::now();
    net.send(0, 1, big.clone()).unwrap();
    net.send(0, 2, Bytes::from_static(b"tiny")).unwrap();
    let _ = ep1.recv_timeout(Duration::from_secs(5)).unwrap();
    let first_done = start.elapsed();
    let _ = ep2.recv_timeout(Duration::from_secs(5)).unwrap();
    let second_done = start.elapsed();
    assert!(
        first_done >= Duration::from_millis(80),
        "big frame should take ~100 ms on the bus, took {first_done:?}"
    );
    assert!(
        second_done >= first_done,
        "the tiny frame must queue behind the big one"
    );
}

#[test]
fn shared_bus_preserves_per_pair_fifo() {
    let net = SimNet::new(2, NetConfig::shared_bus());
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    for _ in 0..40 {
        net.send(0, 1, payload(0)).unwrap();
    }
    let mut last = 0;
    for _ in 0..40 {
        let env = ep1.recv_timeout(TICK).unwrap();
        assert_eq!(env.seq, last + 1);
        last = env.seq;
    }
}

// ---------------------------------------------------------------
// Held (deterministic-simulation) delivery model
// ---------------------------------------------------------------

#[test]
fn held_mode_parks_until_scheduler_releases() {
    let net = SimNet::new(2, NetConfig::held());
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    net.send(0, 1, payload(1)).unwrap();
    net.send(0, 1, payload(2)).unwrap();
    // Nothing moves on its own.
    assert!(matches!(ep1.try_recv(), Err(RecvError::Empty)));
    assert_eq!(net.held_in_flight(), 2);
    assert_eq!(net.held_channels(), vec![(0, 1, 2)]);
    // Releases are explicit and per-channel FIFO.
    assert!(net.held_deliver(0, 1));
    let env = ep1.try_recv().unwrap();
    assert_eq!(&env.payload[..], &[1]);
    assert!(net.held_deliver(0, 1));
    assert_eq!(&ep1.try_recv().unwrap().payload[..], &[2]);
    assert!(!net.held_deliver(0, 1), "channel drained");
    assert_eq!(net.held_in_flight(), 0);
}

#[test]
fn held_deliver_all_flushes_every_channel() {
    let net = SimNet::new(3, NetConfig::held());
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    let ep2 = net.attach(2);
    net.send(0, 1, payload(1)).unwrap();
    net.send(2, 1, payload(2)).unwrap();
    net.send(0, 2, payload(3)).unwrap();
    assert_eq!(net.held_deliver_all(), 3);
    assert!(ep1.try_recv().is_ok());
    assert!(ep1.try_recv().is_ok());
    assert!(ep2.try_recv().is_ok());
    assert_eq!(net.held_in_flight(), 0);
}

#[test]
fn held_scheduler_controls_cross_channel_order() {
    // The same two sends, released in opposite orders, arrive in
    // opposite orders — arrival order is the scheduler's decision.
    for flip in [false, true] {
        let net = SimNet::new(3, NetConfig::held());
        let _ep0 = net.attach(0);
        let _ep1 = net.attach(1);
        let ep2 = net.attach(2);
        net.send(0, 2, payload(10)).unwrap();
        net.send(1, 2, payload(20)).unwrap();
        let order: [(usize, u8); 2] = if flip {
            [(1, 20), (0, 10)]
        } else {
            [(0, 10), (1, 20)]
        };
        for (src, tag) in order {
            assert!(net.held_deliver(src, 2));
            let env = ep2.try_recv().unwrap();
            assert_eq!(env.src, src);
            assert_eq!(&env.payload[..], &[tag]);
        }
    }
}

#[test]
fn non_held_fabric_reports_empty_held_state() {
    let net = SimNet::new(2, NetConfig::direct());
    let _ep0 = net.attach(0);
    let _ep1 = net.attach(1);
    net.send(0, 1, payload(1)).unwrap();
    assert_eq!(net.held_in_flight(), 0);
    assert!(net.held_channels().is_empty());
    assert!(!net.held_deliver(0, 1));
    assert_eq!(net.held_deliver_all(), 0);
}
