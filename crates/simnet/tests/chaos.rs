//! Chaos fault-model integration tests: injected faults are visible in
//! the counters, and a seeded schedule replays identically.

use bytes::Bytes;
use lclog_simnet::{ChaosConfig, NetConfig, Partition, RecvError, SimNet};
use std::time::Duration;

const TICK: Duration = Duration::from_millis(200);

/// Runs a fixed scripted traffic pattern and returns
/// `(fault counters, digest of every delivered (src, seq, payload))`.
fn scripted_run(chaos: ChaosConfig) -> ([u64; 5], u64) {
    let net = SimNet::new(3, NetConfig::direct().with_chaos(chaos));
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    let ep2 = net.attach(2);
    for i in 0..400u32 {
        let payload = Bytes::from(i.to_le_bytes().to_vec());
        net.send(0, 1, payload.clone()).unwrap();
        net.send(0, 2, payload.clone()).unwrap();
        net.send(1, 2, payload).unwrap();
    }
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let mut absorb = |b: u8| {
        digest ^= b as u64;
        digest = digest.wrapping_mul(0x100_0000_01b3);
    };
    for ep in [&ep1, &ep2] {
        loop {
            match ep.try_recv() {
                Ok(env) => {
                    absorb(env.src as u8);
                    for b in env.seq.to_le_bytes() {
                        absorb(b);
                    }
                    for &b in env.payload.iter() {
                        absorb(b);
                    }
                }
                Err(RecvError::Empty) => break,
                Err(e) => panic!("unexpected recv error: {e}"),
            }
        }
    }
    let s = net.stats();
    (
        [
            s.chaos_dropped(),
            s.chaos_duplicated(),
            s.chaos_corrupted(),
            s.chaos_stalled(),
            s.partition_dropped(),
        ],
        digest,
    )
}

fn noisy(seed: u64) -> ChaosConfig {
    ChaosConfig::seeded(seed)
        .with_drop(0.05)
        .with_duplicate(0.02)
        .with_corrupt(0.01)
        .with_partition(Partition {
            group: vec![0],
            from_seq: 50,
            to_seq: 80,
        })
}

#[test]
fn seeded_schedule_replays_identically() {
    let (counters_a, digest_a) = scripted_run(noisy(0xC0FFEE));
    let (counters_b, digest_b) = scripted_run(noisy(0xC0FFEE));
    assert_eq!(counters_a, counters_b, "fault counters must replay");
    assert_eq!(digest_a, digest_b, "delivered stream must replay");
    // Faults actually fired.
    assert!(counters_a[0] > 0, "expected drops, got {counters_a:?}");
    assert!(counters_a[1] > 0, "expected duplicates, got {counters_a:?}");
    assert!(counters_a[2] > 0, "expected corruptions, got {counters_a:?}");
    assert_eq!(counters_a[4], 60, "two crossing links x 30-seq window");
    // A different seed yields a different schedule.
    let (counters_c, digest_c) = scripted_run(noisy(0xBEEF));
    assert!(
        counters_a != counters_c || digest_a != digest_c,
        "different seeds should not collide"
    );
}

#[test]
fn clean_chaos_config_is_transparent() {
    let (counters, _) = scripted_run(ChaosConfig::seeded(1));
    assert_eq!(counters, [0, 0, 0, 0, 0]);
    let net = SimNet::new(2, NetConfig::direct().with_chaos(ChaosConfig::seeded(1)));
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    net.send(0, 1, Bytes::from_static(b"hi")).unwrap();
    assert_eq!(&ep1.recv_timeout(TICK).unwrap().payload[..], b"hi");
}

#[test]
fn duplicates_share_the_fabric_seq() {
    // With duplicate_p = 1 every envelope arrives exactly twice and
    // both copies carry the same per-pair sequence number.
    let net = SimNet::new(2, NetConfig::direct().with_chaos(ChaosConfig::seeded(9).with_duplicate(1.0)));
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    net.send(0, 1, Bytes::from_static(b"x")).unwrap();
    let a = ep1.recv_timeout(TICK).unwrap();
    let b = ep1.recv_timeout(TICK).unwrap();
    assert_eq!(a.seq, b.seq);
    assert_eq!(&a.payload[..], &b.payload[..]);
    assert_eq!(net.stats().chaos_duplicated(), 1);
}

#[test]
fn corruption_flips_exactly_one_bit() {
    let net = SimNet::new(2, NetConfig::direct().with_chaos(ChaosConfig::seeded(3).with_corrupt(1.0)));
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    let clean = vec![0u8; 32];
    net.send(0, 1, Bytes::from(clean.clone())).unwrap();
    let env = ep1.recv_timeout(TICK).unwrap();
    let flipped: u32 = env
        .payload
        .iter()
        .zip(clean.iter())
        .map(|(a, b)| (a ^ b).count_ones())
        .sum();
    assert_eq!(flipped, 1, "exactly one bit must differ");
    assert_eq!(net.stats().chaos_corrupted(), 1);
}

#[test]
fn stalls_delay_but_deliver() {
    let chaos = ChaosConfig::seeded(5).with_stall(1.0, Duration::from_millis(20));
    let net = SimNet::new(2, NetConfig::direct().with_chaos(chaos));
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    let start = std::time::Instant::now();
    net.send(0, 1, Bytes::from_static(b"slow")).unwrap();
    let env = ep1.recv_timeout(Duration::from_secs(5)).unwrap();
    assert_eq!(&env.payload[..], b"slow");
    assert!(
        start.elapsed() >= Duration::from_millis(15),
        "stall should impose noticeable delay, took {:?}",
        start.elapsed()
    );
    assert_eq!(net.stats().chaos_stalled(), 1);
}

#[test]
fn partition_severs_only_the_window() {
    let chaos = ChaosConfig::seeded(11).with_partition(Partition {
        group: vec![0],
        from_seq: 2,
        to_seq: 3,
    });
    let net = SimNet::new(2, NetConfig::direct().with_chaos(chaos));
    let _ep0 = net.attach(0);
    let ep1 = net.attach(1);
    for i in 0..4u8 {
        net.send(0, 1, Bytes::from(vec![i])).unwrap();
    }
    let seqs: Vec<u64> = std::iter::from_fn(|| ep1.try_recv().ok().map(|e| e.seq)).collect();
    assert_eq!(seqs, vec![1, 3, 4], "seq 2 falls in the partition window");
    assert_eq!(net.stats().partition_dropped(), 1);
}
