//! Virtual time for deterministic simulation.
//!
//! A [`SimClock`] is a shared counter of simulated nanoseconds,
//! anchored to an arbitrary epoch [`Instant`] so existing code that
//! stores and compares `Instant`s keeps working unchanged. Nothing
//! advances it but explicit [`SimClock::advance`] calls — on a
//! deterministic run the scheduler owns *all* progress of time, so
//! every timeout, backoff, and detector decision is a pure function of
//! the schedule instead of the host's wall clock.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared virtual clock. Cheap to clone; all clones tick together.
#[derive(Clone)]
pub struct SimClock {
    /// Wall-clock anchor taken once at construction. Only ever used as
    /// the zero point for `Instant` arithmetic — no code path reads
    /// the wall clock after this.
    epoch: Instant,
    nanos: Arc<AtomicU64>,
}

impl SimClock {
    /// A new clock at simulated time zero.
    pub fn new() -> Self {
        SimClock {
            epoch: Instant::now(),
            nanos: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The current simulated time, expressed as an `Instant` so it
    /// composes with `Duration` arithmetic and comparisons exactly
    /// like wall-clock readings.
    pub fn now(&self) -> Instant {
        self.epoch + Duration::from_nanos(self.nanos.load(Ordering::Acquire))
    }

    /// Advance simulated time by `d`.
    pub fn advance(&self, d: Duration) {
        let nanos = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(nanos, Ordering::AcqRel);
    }

    /// Simulated time elapsed since construction.
    pub fn elapsed(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Acquire))
    }
}

impl Default for SimClock {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimClock")
            .field("elapsed", &self.elapsed())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_only_explicitly() {
        let c = SimClock::new();
        let t0 = c.now();
        assert_eq!(c.now(), t0, "time stands still without advance");
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now() - t0, Duration::from_millis(5));
        assert_eq!(c.elapsed(), Duration::from_millis(5));
    }

    #[test]
    fn clones_share_time() {
        let a = SimClock::new();
        let b = a.clone();
        b.advance(Duration::from_secs(1));
        assert_eq!(a.elapsed(), Duration::from_secs(1));
        assert_eq!(a.now(), b.now());
    }
}
