use crate::chaos::ChaosConfig;
use crate::courier::Courier;
use crate::{DeliveryModel, Envelope, NetConfig, NetStats, Rank};
use bytes::Bytes;
use crossbeam::channel::{self, Receiver, RecvTimeoutError, Sender, TryRecvError};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Errors returned by [`SimNet::send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// Destination rank is outside `0..n`.
    BadRank(Rank),
}

impl fmt::Display for SendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SendError::BadRank(r) => write!(f, "rank {r} out of range"),
        }
    }
}

impl std::error::Error for SendError {}

/// Errors returned by [`Endpoint::recv_timeout`] / [`Endpoint::try_recv`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived before the deadline.
    Timeout,
    /// No message is currently queued (`try_recv` only).
    Empty,
    /// This endpoint's incarnation has been killed; its inbox contents
    /// are lost.
    Dead,
}

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "receive timed out"),
            RecvError::Empty => write!(f, "no message queued"),
            RecvError::Dead => write!(f, "endpoint incarnation is dead"),
        }
    }
}

impl std::error::Error for RecvError {}

enum SlotState {
    /// No endpoint has attached yet.
    Detached,
    /// Live endpoint; envelopes flow into this channel.
    Attached(Sender<Envelope>),
    /// Killed; envelopes addressed here are dropped.
    Dead,
}

struct Slot {
    incarnation: u64,
    state: SlotState,
}

/// Shared fabric state: endpoint slots, per-pair sequence counters and
/// traffic stats. Held by `SimNet`, every `Endpoint`, and the courier
/// thread.
pub(crate) struct Fabric {
    n: usize,
    slots: Vec<Mutex<Slot>>,
    pair_seq: Vec<AtomicU64>,
    stats: NetStats,
    chaos: Option<ChaosConfig>,
    /// Scheduler-held in-flight envelopes ([`DeliveryModel::Held`]):
    /// one FIFO per `(src, dst)` channel, released only by explicit
    /// `held_deliver*` calls. `None` for every other delivery model.
    held: Option<Mutex<Vec<std::collections::VecDeque<Envelope>>>>,
}

impl Fabric {
    /// Place `env` into the destination inbox if its current
    /// incarnation is alive; otherwise drop it (crash-loss model).
    pub(crate) fn deliver(&self, env: Envelope) {
        let slot = self.slots[env.dst].lock();
        match &slot.state {
            SlotState::Attached(tx) => {
                // The receiver can only disappear if the endpoint was
                // dropped without `kill`; treat that as dead too.
                if tx.send(env).is_ok() {
                    self.stats.record_delivered();
                } else {
                    self.stats.record_dropped_dead();
                }
            }
            SlotState::Detached | SlotState::Dead => {
                self.stats.record_dropped_dead();
            }
        }
    }

    fn is_current(&self, rank: Rank, incarnation: u64) -> bool {
        let slot = self.slots[rank].lock();
        slot.incarnation == incarnation && matches!(slot.state, SlotState::Attached(_))
    }
}

/// The simulated cluster fabric. Cheap to clone; all clones share the
/// same state.
#[derive(Clone)]
pub struct SimNet {
    fabric: Arc<Fabric>,
    courier: Option<Arc<Courier>>,
}

impl SimNet {
    /// Create a fabric with `n` endpoint slots.
    pub fn new(n: usize, config: NetConfig) -> Self {
        assert!(n > 0, "fabric needs at least one endpoint");
        let fabric = Arc::new(Fabric {
            n,
            slots: (0..n)
                .map(|_| {
                    Mutex::new(Slot {
                        incarnation: 0,
                        state: SlotState::Detached,
                    })
                })
                .collect(),
            pair_seq: (0..n * n).map(|_| AtomicU64::new(0)).collect(),
            stats: NetStats::default(),
            chaos: config.chaos.clone(),
            held: matches!(config.delivery, DeliveryModel::Held).then(|| {
                Mutex::new(
                    (0..n * n)
                        .map(|_| std::collections::VecDeque::new())
                        .collect(),
                )
            }),
        });
        // Chaos stalls are imposed in flight, so they need a courier
        // even under the otherwise-synchronous direct model.
        let stall_courier = config
            .chaos
            .as_ref()
            .is_some_and(ChaosConfig::wants_courier);
        let courier = match config.delivery {
            DeliveryModel::Direct if stall_courier => Some(Arc::new(Courier::spawn(
                Arc::clone(&fabric),
                n,
                crate::courier::Timing::Delayed {
                    base: Duration::ZERO,
                    per_kib: Duration::ZERO,
                    jitter: Duration::ZERO,
                    seed: 0,
                },
            ))),
            DeliveryModel::Direct => None,
            DeliveryModel::Delayed {
                base,
                per_kib,
                jitter,
                seed,
            } => Some(Arc::new(Courier::spawn(
                Arc::clone(&fabric),
                n,
                crate::courier::Timing::Delayed {
                    base,
                    per_kib,
                    jitter,
                    seed,
                },
            ))),
            DeliveryModel::SharedBus {
                latency,
                bytes_per_sec,
            } => Some(Arc::new(Courier::spawn(
                Arc::clone(&fabric),
                n,
                crate::courier::Timing::SharedBus {
                    latency,
                    bytes_per_sec,
                },
            ))),
            // Held mode spawns nothing: the scheduler *is* the
            // courier, and chaos stalls are meaningless when delivery
            // timing is already an explicit decision.
            DeliveryModel::Held => None,
        };
        SimNet { fabric, courier }
    }

    /// Number of endpoint slots.
    pub fn n(&self) -> usize {
        self.fabric.n
    }

    /// Traffic counters.
    pub fn stats(&self) -> &NetStats {
        &self.fabric.stats
    }

    /// Attach the first incarnation of `rank`, returning its receiving
    /// endpoint. Panics if the slot was already attached (use
    /// [`SimNet::respawn`] after a kill).
    pub fn attach(&self, rank: Rank) -> Endpoint {
        assert!(rank < self.fabric.n, "rank {rank} out of range");
        let (tx, rx) = channel::unbounded();
        let mut slot = self.fabric.slots[rank].lock();
        assert!(
            matches!(slot.state, SlotState::Detached),
            "rank {rank} already attached; kill + respawn to reincarnate"
        );
        slot.incarnation = 1;
        slot.state = SlotState::Attached(tx);
        Endpoint {
            rank,
            incarnation: 1,
            rx,
            fabric: Arc::clone(&self.fabric),
        }
    }

    /// Kill the current incarnation of `rank`: its inbox and all
    /// in-flight messages towards it are lost.
    pub fn kill(&self, rank: Rank) {
        assert!(rank < self.fabric.n, "rank {rank} out of range");
        let mut slot = self.fabric.slots[rank].lock();
        slot.state = SlotState::Dead;
    }

    /// Create a fresh incarnation of a previously killed (or detached)
    /// rank with an empty inbox.
    pub fn respawn(&self, rank: Rank) -> Endpoint {
        assert!(rank < self.fabric.n, "rank {rank} out of range");
        let (tx, rx) = channel::unbounded();
        let mut slot = self.fabric.slots[rank].lock();
        assert!(
            !matches!(slot.state, SlotState::Attached(_)),
            "rank {rank} is still attached; kill it first"
        );
        slot.incarnation += 1;
        let incarnation = slot.incarnation;
        slot.state = SlotState::Attached(tx);
        Endpoint {
            rank,
            incarnation,
            rx,
            fabric: Arc::clone(&self.fabric),
        }
    }

    /// True when the current incarnation of `rank` is attached and
    /// alive.
    pub fn is_alive(&self, rank: Rank) -> bool {
        let slot = self.fabric.slots[rank].lock();
        matches!(slot.state, SlotState::Attached(_))
    }

    /// Send `payload` from `src` to `dst`. Sending to a dead rank
    /// succeeds and the message is dropped — senders cannot observe
    /// remote failures synchronously, exactly like a datagram on the
    /// paper's LAN.
    ///
    /// When a [`ChaosConfig`] is installed, the envelope may be
    /// dropped, duplicated, bit-flipped, severed by a partition
    /// window, or stalled in flight — all decided purely from the
    /// chaos seed and the per-link sequence number, so a schedule
    /// replays identically for the same per-link send sequence.
    pub fn send(&self, src: Rank, dst: Rank, payload: Bytes) -> Result<(), SendError> {
        self.send_parts(src, dst, payload, Bytes::new())
    }

    /// Send a two-segment frame (`payload ++ body`) without joining
    /// the segments. The zero-copy resend path uses this to pair a
    /// small fresh header with a refcounted window into the sender
    /// log; the fabric charges, corrupts, and delivers the pair as one
    /// logical frame.
    pub fn send_parts(
        &self,
        src: Rank,
        dst: Rank,
        payload: Bytes,
        body: Bytes,
    ) -> Result<(), SendError> {
        if dst >= self.fabric.n {
            return Err(SendError::BadRank(dst));
        }
        if src >= self.fabric.n {
            return Err(SendError::BadRank(src));
        }
        let seq = self.fabric.pair_seq[src * self.fabric.n + dst].fetch_add(1, Ordering::Relaxed) + 1;
        self.fabric.stats.record_send(payload.len() + body.len());
        let mut payload = payload;
        let mut body = body;
        let mut duplicated = false;
        let mut stall = Duration::ZERO;
        if let Some(chaos) = &self.fabric.chaos {
            let fate = chaos.fate(src, dst, seq);
            if fate.severed {
                self.fabric.stats.record_partition_dropped();
                return Ok(());
            }
            if fate.dropped {
                self.fabric.stats.record_chaos_dropped();
                return Ok(());
            }
            if let Some(bit) = fate.corrupt_bit {
                let total = payload.len() + body.len();
                if total > 0 {
                    // Pick the flipped bit across the logical frame so
                    // segmented sends are corrupted with the same
                    // probability per byte as contiguous ones, then
                    // copy-on-write only the segment that owns it.
                    let target = (bit % (total as u64 * 8)) as usize;
                    let (seg, seg_bit) = if target / 8 < payload.len() {
                        (&mut payload, target)
                    } else {
                        (&mut body, target - payload.len() * 8)
                    };
                    let mut bytes = seg.to_vec();
                    bytes[seg_bit / 8] ^= 1 << (seg_bit % 8);
                    *seg = Bytes::from(bytes);
                    self.fabric.stats.record_chaos_corrupted();
                }
            }
            if fate.duplicated {
                self.fabric.stats.record_chaos_duplicated();
                duplicated = true;
            }
            if fate.stall > Duration::ZERO {
                self.fabric.stats.record_chaos_stalled();
                stall = fate.stall;
            }
        }
        let env = Envelope {
            src,
            dst,
            seq,
            payload,
            body,
        };
        // A duplicate keeps the same fabric `seq`: it models the same
        // frame arriving twice, which the reliability layer above the
        // fabric must collapse to one delivery.
        let copies = if duplicated { 2 } else { 1 };
        for _ in 0..copies {
            if let Some(held) = &self.fabric.held {
                held.lock()[src * self.fabric.n + dst].push_back(env.clone());
                continue;
            }
            match &self.courier {
                None => self.fabric.deliver(env.clone()),
                Some(courier) => courier.submit(env.clone(), stall),
            }
        }
        Ok(())
    }

    // ---------------------------------------------------------------
    // Scheduler hooks for [`DeliveryModel::Held`]
    // ---------------------------------------------------------------

    /// Non-empty held channels as `(src, dst, queued)`, sorted by
    /// `(src, dst)` — a deterministic view of everything in flight.
    /// Empty on fabrics not in held mode.
    pub fn held_channels(&self) -> Vec<(Rank, Rank, usize)> {
        let Some(held) = &self.fabric.held else {
            return Vec::new();
        };
        let n = self.fabric.n;
        let held = held.lock();
        (0..n * n)
            .filter(|&i| !held[i].is_empty())
            .map(|i| (i / n, i % n, held[i].len()))
            .collect()
    }

    /// Total held envelopes across all channels (0 unless held mode).
    pub fn held_in_flight(&self) -> usize {
        match &self.fabric.held {
            Some(held) => held.lock().iter().map(|q| q.len()).sum(),
            None => 0,
        }
    }

    /// Payload of the next parked envelope on `src → dst`, if any — a
    /// cheap refcounted peek that lets a deterministic scheduler
    /// classify the frame before deciding whether releasing it is a
    /// branch point. `None` when the channel is empty or the fabric is
    /// not in held mode.
    pub fn held_head(&self, src: Rank, dst: Rank) -> Option<bytes::Bytes> {
        let held = self.fabric.held.as_ref()?;
        held.lock()[src * self.fabric.n + dst].front().map(|env| {
            if env.body.is_empty() {
                // Contiguous frame: hand back the buffer as-is.
                env.payload.clone()
            } else {
                // Two-segment frame (zero-copy resend): the inner
                // message — and so its discriminant — lives in the
                // body, which classification must be able to see.
                let mut joined =
                    bytes::BytesMut::with_capacity(env.payload.len() + env.body.len());
                joined.extend_from_slice(&env.payload);
                joined.extend_from_slice(&env.body);
                joined.freeze()
            }
        })
    }

    /// Release the head envelope of the `(src, dst)` channel into the
    /// destination inbox (FIFO within the channel is preserved by
    /// construction). Returns `false` when the channel is empty or the
    /// fabric is not in held mode.
    pub fn held_deliver(&self, src: Rank, dst: Rank) -> bool {
        let Some(held) = &self.fabric.held else {
            return false;
        };
        let env = held.lock()[src * self.fabric.n + dst].pop_front();
        match env {
            Some(env) => {
                self.fabric.deliver(env);
                true
            }
            None => false,
        }
    }

    /// Release every held envelope, channel by channel in `(src, dst)`
    /// order, repeating until nothing is in flight (deliveries can
    /// trigger no new sends at the fabric level, but the loop keeps
    /// the method correct if a future caller races sends with it).
    /// Returns the number of envelopes released.
    pub fn held_deliver_all(&self) -> usize {
        let mut released = 0;
        loop {
            let channels = self.held_channels();
            if channels.is_empty() {
                return released;
            }
            for (src, dst, queued) in channels {
                for _ in 0..queued {
                    if self.held_deliver(src, dst) {
                        released += 1;
                    }
                }
            }
        }
    }
}

impl fmt::Debug for SimNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SimNet")
            .field("n", &self.fabric.n)
            .field("delayed", &self.courier.is_some())
            .finish()
    }
}

/// The receiving half of one rank incarnation.
pub struct Endpoint {
    rank: Rank,
    incarnation: u64,
    rx: Receiver<Envelope>,
    fabric: Arc<Fabric>,
}

impl Endpoint {
    /// The rank this endpoint receives for.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Incarnation number (1 for the first attach, +1 per respawn).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// True while this incarnation is the live one.
    pub fn is_alive(&self) -> bool {
        self.fabric.is_current(self.rank, self.incarnation)
    }

    /// Block up to `timeout` for the next envelope.
    ///
    /// Returns [`RecvError::Dead`] as soon as this incarnation has
    /// been killed — queued messages are *not* drained, matching the
    /// lost-volatile-state crash model.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Envelope, RecvError> {
        if !self.is_alive() {
            return Err(RecvError::Dead);
        }
        match self.rx.recv_timeout(timeout) {
            Ok(env) => {
                if self.is_alive() {
                    Ok(env)
                } else {
                    Err(RecvError::Dead)
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if self.is_alive() {
                    Err(RecvError::Timeout)
                } else {
                    Err(RecvError::Dead)
                }
            }
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Dead),
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<Envelope, RecvError> {
        if !self.is_alive() {
            return Err(RecvError::Dead);
        }
        match self.rx.try_recv() {
            Ok(env) => Ok(env),
            Err(TryRecvError::Empty) => Err(RecvError::Empty),
            Err(TryRecvError::Disconnected) => Err(RecvError::Dead),
        }
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Endpoint")
            .field("rank", &self.rank)
            .field("incarnation", &self.incarnation)
            .finish()
    }
}
