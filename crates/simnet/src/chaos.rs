//! Seeded chaos fault model: per-link drop / duplicate / bit-flip
//! corruption, transient partitions, and courier stalls.
//!
//! Every decision is a pure function of `(seed, src, dst, seq, salt)`,
//! where `seq` is the fabric's per-`(src, dst)` sequence number. Given
//! the same seed and the same per-link send sequence, a chaos schedule
//! therefore replays *identically* — independent of thread timing,
//! wall-clock, or traffic on other links. Partitions are likewise
//! expressed as windows in per-link sequence space rather than wall
//! time, for the same reason.

use crate::Rank;
use std::time::Duration;

/// A transient partition: while a link's per-pair sequence number lies
/// in `[from_seq, to_seq)` and the link crosses the group boundary
/// (exactly one endpoint inside `group`), the message is severed.
///
/// Expressing the window in sequence space instead of wall time keeps
/// chaos schedules replayable: the k-th message on a link is severed
/// or not regardless of when it is sent.
#[derive(Debug, Clone)]
pub struct Partition {
    /// Ranks on one side of the cut.
    pub group: Vec<Rank>,
    /// First per-link sequence number affected (inclusive).
    pub from_seq: u64,
    /// First per-link sequence number no longer affected (exclusive).
    pub to_seq: u64,
}

impl Partition {
    /// True when this partition severs the `src → dst` message with
    /// per-link sequence number `seq`.
    pub fn severs(&self, src: Rank, dst: Rank, seq: u64) -> bool {
        seq >= self.from_seq
            && seq < self.to_seq
            && (self.group.contains(&src) != self.group.contains(&dst))
    }
}

/// Knobs of the seeded chaos fault model. All probabilities are per
/// envelope accepted by [`crate::SimNet::send`] and default to zero;
/// a default `ChaosConfig` injects no faults.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for all chaos decisions.
    pub seed: u64,
    /// Probability an envelope silently vanishes.
    pub drop_p: f64,
    /// Probability an envelope is delivered twice (same fabric `seq`,
    /// so reliability layers can discard the copy below the app).
    pub duplicate_p: f64,
    /// Probability one payload bit is flipped in transit.
    pub corrupt_p: f64,
    /// Probability the courier stalls this envelope by [`ChaosConfig::stall`].
    pub stall_p: f64,
    /// Extra in-flight delay applied to stalled envelopes.
    pub stall: Duration,
    /// Probability an envelope draws an extra heavy-tailed delay.
    pub delay_p: f64,
    /// Median of the lognormal heavy-tail delay distribution.
    pub delay_median: Duration,
    /// Shape (σ of the underlying normal) of the heavy tail. Around
    /// 1.0 the 99th percentile sits near `10 × median`.
    pub delay_sigma: f64,
    /// Hard cap on a single heavy-tail draw, so a pathological sample
    /// cannot outlast a whole experiment.
    pub delay_cap: Duration,
    /// Transient partitions in per-link sequence space.
    pub partitions: Vec<Partition>,
}

impl ChaosConfig {
    /// A chaos model with the given seed and no faults enabled.
    pub fn seeded(seed: u64) -> Self {
        ChaosConfig {
            seed,
            drop_p: 0.0,
            duplicate_p: 0.0,
            corrupt_p: 0.0,
            stall_p: 0.0,
            stall: Duration::from_millis(2),
            delay_p: 0.0,
            delay_median: Duration::from_millis(2),
            delay_sigma: 1.0,
            delay_cap: Duration::from_millis(20),
            partitions: Vec::new(),
        }
    }

    /// Sets the per-envelope drop probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability out of range");
        self.drop_p = p;
        self
    }

    /// Sets the per-envelope duplication probability.
    pub fn with_duplicate(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplicate probability out of range");
        self.duplicate_p = p;
        self
    }

    /// Sets the per-envelope single-bit corruption probability.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "corrupt probability out of range");
        self.corrupt_p = p;
        self
    }

    /// Sets the courier-stall probability and stall duration.
    pub fn with_stall(mut self, p: f64, stall: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "stall probability out of range");
        self.stall_p = p;
        self.stall = stall;
        self
    }

    /// Enables a seeded heavy-tailed (lognormal) per-envelope delay:
    /// with probability `p` an envelope is held for
    /// `median · exp(sigma · z)` (z standard normal), capped at `cap`.
    /// Because the courier preserves per-pair FIFO, one tail draw
    /// silences its whole link for the draw's duration — exactly the
    /// jitter an accrual failure detector must ride out.
    pub fn with_heavy_tail(mut self, p: f64, median: Duration, sigma: f64, cap: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "delay probability out of range");
        assert!(sigma >= 0.0, "delay sigma must be non-negative");
        self.delay_p = p;
        self.delay_median = median;
        self.delay_sigma = sigma;
        self.delay_cap = cap;
        self
    }

    /// Adds a transient partition window.
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partitions.push(partition);
        self
    }

    /// True when stalls or heavy-tail delays can occur (the fabric
    /// then needs a courier even under the direct delivery model).
    pub fn wants_courier(&self) -> bool {
        self.stall_p > 0.0 || self.delay_p > 0.0
    }

    /// Decides the fate of one envelope. Pure in `(seed, src, dst,
    /// seq)`; two calls with identical arguments always agree.
    pub(crate) fn fate(&self, src: Rank, dst: Rank, seq: u64) -> Fate {
        let severed = self.partitions.iter().any(|p| p.severs(src, dst, seq));
        let mut stall = Duration::ZERO;
        if self.stall_p > 0.0 && self.roll(src, dst, seq, SALT_STALL) < self.stall_p {
            stall += self.stall;
        }
        if self.delay_p > 0.0 && self.roll(src, dst, seq, SALT_DELAY) < self.delay_p {
            stall += self.heavy_tail_sample(src, dst, seq);
        }
        Fate {
            severed,
            dropped: !severed && self.roll(src, dst, seq, SALT_DROP) < self.drop_p,
            duplicated: self.roll(src, dst, seq, SALT_DUP) < self.duplicate_p,
            corrupt_bit: (self.roll(src, dst, seq, SALT_CORRUPT) < self.corrupt_p)
                .then(|| self.hash(src, dst, seq, SALT_BIT)),
            stall,
        }
    }

    /// One lognormal draw via Box–Muller over two salted uniforms.
    /// Pure in `(seed, src, dst, seq)` like every other chaos roll.
    fn heavy_tail_sample(&self, src: Rank, dst: Rank, seq: u64) -> Duration {
        // Nudge u1 into (0, 1] so ln(u1) is finite.
        let u1 = ((self.hash(src, dst, seq, SALT_TAIL_A) >> 11) + 1) as f64 / (1u64 << 53) as f64;
        let u2 = self.roll(src, dst, seq, SALT_TAIL_B);
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        let scaled = self.delay_median.as_secs_f64() * (self.delay_sigma * z).exp();
        Duration::from_secs_f64(scaled.min(self.delay_cap.as_secs_f64()))
    }

    fn hash(&self, src: Rank, dst: Rank, seq: u64, salt: u64) -> u64 {
        let key = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((src as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add((dst as u64).wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add(seq.wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add(salt);
        splitmix(key)
    }

    fn roll(&self, src: Rank, dst: Rank, seq: u64, salt: u64) -> f64 {
        (self.hash(src, dst, seq, salt) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A remote-storage outage: while the store's global operation
/// sequence number lies in `[from_op, to_op)`, every operation fails
/// with an *unavailable* error.
///
/// Like [`Partition`], the window lives in sequence space rather than
/// wall time so a storage chaos schedule replays identically under
/// the same seed, independent of thread timing.
#[derive(Debug, Clone)]
pub struct OutageWindow {
    /// First operation sequence number affected (inclusive).
    pub from_op: u64,
    /// First operation sequence number no longer affected (exclusive).
    pub to_op: u64,
}

impl OutageWindow {
    /// True when operation `op` falls inside the outage.
    pub fn covers(&self, op: u64) -> bool {
        op >= self.from_op && op < self.to_op
    }
}

/// Seeded fault model for a simulated remote object store (the
/// storage-side sibling of [`ChaosConfig`]). Every decision is a pure
/// function of `(seed, op, salt)`, where `op` is the store's global
/// operation sequence number — the same replayability discipline as
/// the network chaos model. All probabilities are per operation and
/// default to zero.
#[derive(Debug, Clone)]
pub struct StorageChaos {
    /// Seed for all storage-fault decisions.
    pub seed: u64,
    /// Probability an operation fails with a retryable transient
    /// error (the backend stays untouched).
    pub transient_p: f64,
    /// Probability a put stores a *truncated* object yet reports
    /// success — a torn upload only a checksum can catch.
    pub torn_p: f64,
    /// Probability a put stores the object with one bit flipped yet
    /// reports success — silent media corruption.
    pub flip_p: f64,
    /// Probability an operation is held for [`StorageChaos::spike`]
    /// before executing (a latency spike, not a failure).
    pub spike_p: f64,
    /// Duration of a latency spike.
    pub spike: Duration,
    /// Unavailability windows in operation-sequence space.
    pub outages: Vec<OutageWindow>,
}

impl StorageChaos {
    /// A storage fault model with the given seed and no faults.
    pub fn seeded(seed: u64) -> Self {
        StorageChaos {
            seed,
            transient_p: 0.0,
            torn_p: 0.0,
            flip_p: 0.0,
            spike_p: 0.0,
            spike: Duration::from_millis(1),
            outages: Vec::new(),
        }
    }

    /// Sets the per-operation transient-error probability.
    pub fn with_transient(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "transient probability out of range");
        self.transient_p = p;
        self
    }

    /// Sets the per-put torn-object probability.
    pub fn with_torn_put(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "torn probability out of range");
        self.torn_p = p;
        self
    }

    /// Sets the per-put bit-flip probability.
    pub fn with_corrupt_put(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "corrupt probability out of range");
        self.flip_p = p;
        self
    }

    /// Sets the per-operation latency-spike probability and duration.
    pub fn with_latency_spike(mut self, p: f64, spike: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "spike probability out of range");
        self.spike_p = p;
        self.spike = spike;
        self
    }

    /// Adds an unavailability window in operation-sequence space.
    pub fn with_outage(mut self, from_op: u64, to_op: u64) -> Self {
        self.outages.push(OutageWindow { from_op, to_op });
        self
    }

    /// Decides the fate of one storage operation. Pure in
    /// `(seed, op)`; two calls with identical arguments always agree.
    pub fn fate(&self, op: u64) -> StorageFate {
        StorageFate {
            unavailable: self.outages.iter().any(|w| w.covers(op)),
            transient: self.transient_p > 0.0
                && self.roll(op, SALT_S_TRANSIENT) < self.transient_p,
            torn: self.torn_p > 0.0 && self.roll(op, SALT_S_TORN) < self.torn_p,
            flip_bit: (self.flip_p > 0.0 && self.roll(op, SALT_S_FLIP) < self.flip_p)
                .then(|| self.hash(op, SALT_S_BIT)),
            spike: if self.spike_p > 0.0 && self.roll(op, SALT_S_SPIKE) < self.spike_p {
                self.spike
            } else {
                Duration::ZERO
            },
        }
    }

    fn hash(&self, op: u64, salt: u64) -> u64 {
        let key = self
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(op.wrapping_mul(0xD6E8_FEB8_6659_FD93))
            .wrapping_add(salt);
        splitmix(key)
    }

    fn roll(&self, op: u64, salt: u64) -> f64 {
        (self.hash(op, salt) >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The outcome of the storage-chaos rolls for one operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageFate {
    /// The operation lands in an outage window: fail unavailable.
    pub unavailable: bool,
    /// The operation fails with a retryable transient error.
    pub transient: bool,
    /// A put stores only a truncated prefix, yet reports success.
    pub torn: bool,
    /// When `Some(h)`, a put stores the object with bit `h % (len*8)`
    /// flipped, yet reports success.
    pub flip_bit: Option<u64>,
    /// Extra latency before the operation executes.
    pub spike: Duration,
}

const SALT_DROP: u64 = 0xD0;
const SALT_DUP: u64 = 0xD1;
const SALT_CORRUPT: u64 = 0xC0;
const SALT_BIT: u64 = 0xB1;
const SALT_STALL: u64 = 0x57;
const SALT_DELAY: u64 = 0xDE;
const SALT_TAIL_A: u64 = 0x7A;
const SALT_TAIL_B: u64 = 0x7B;
const SALT_S_TRANSIENT: u64 = 0x5A;
const SALT_S_TORN: u64 = 0x5B;
const SALT_S_FLIP: u64 = 0x5C;
const SALT_S_BIT: u64 = 0x5D;
const SALT_S_SPIKE: u64 = 0x5E;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The outcome of the chaos rolls for one envelope.
pub(crate) struct Fate {
    /// Severed by a partition window (dropped, counted separately).
    pub severed: bool,
    /// Randomly dropped.
    pub dropped: bool,
    /// Delivered twice.
    pub duplicated: bool,
    /// When `Some(h)`, flip payload bit `h % (len * 8)`.
    pub corrupt_bit: Option<u64>,
    /// Extra time the courier holds this envelope: the uniform stall
    /// plus any heavy-tail draw. Zero means deliver on schedule.
    pub stall: Duration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_pure_and_seed_sensitive() {
        let c = ChaosConfig::seeded(7)
            .with_drop(0.3)
            .with_duplicate(0.3)
            .with_corrupt(0.3);
        for seq in 1..200u64 {
            let a = c.fate(0, 1, seq);
            let b = c.fate(0, 1, seq);
            assert_eq!(a.dropped, b.dropped);
            assert_eq!(a.duplicated, b.duplicated);
            assert_eq!(a.corrupt_bit, b.corrupt_bit);
        }
        // A different seed must produce a different schedule somewhere.
        let d = ChaosConfig::seeded(8)
            .with_drop(0.3)
            .with_duplicate(0.3)
            .with_corrupt(0.3);
        assert!((1..200u64).any(|seq| c.fate(0, 1, seq).dropped != d.fate(0, 1, seq).dropped));
    }

    #[test]
    fn rates_are_roughly_honored() {
        let c = ChaosConfig::seeded(42).with_drop(0.1);
        let dropped = (1..=10_000u64).filter(|&s| c.fate(2, 3, s).dropped).count();
        assert!((700..1300).contains(&dropped), "dropped={dropped}");
    }

    #[test]
    fn heavy_tail_is_pure_capped_and_actually_heavy() {
        let median = Duration::from_millis(2);
        let cap = Duration::from_millis(20);
        let c = ChaosConfig::seeded(11).with_heavy_tail(1.0, median, 1.0, cap);
        assert!(c.wants_courier());
        let draws: Vec<Duration> = (1..=10_000u64).map(|s| c.fate(0, 1, s).stall).collect();
        for (i, d) in draws.iter().enumerate() {
            assert_eq!(*d, c.fate(0, 1, (i + 1) as u64).stall, "draws must replay");
            assert!(*d <= cap, "draw {d:?} exceeds cap");
        }
        // Median of a lognormal is its scale parameter: roughly half
        // the draws land on each side.
        let above = draws.iter().filter(|d| **d > median).count();
        assert!((4000..6000).contains(&above), "above-median count {above}");
        // Heavy tail: a visible fraction of draws exceed 5× median.
        let tail = draws.iter().filter(|d| **d > 5 * median).count();
        assert!(tail > 100, "tail draws {tail}");
        // Probability gate honours delay_p.
        let rare = ChaosConfig::seeded(11).with_heavy_tail(0.05, median, 1.0, cap);
        let delayed = (1..=10_000u64)
            .filter(|&s| rare.fate(0, 1, s).stall > Duration::ZERO)
            .count();
        assert!((300..800).contains(&delayed), "delayed={delayed}");
    }

    #[test]
    fn stall_and_heavy_tail_compose() {
        let c = ChaosConfig::seeded(3)
            .with_stall(1.0, Duration::from_millis(4))
            .with_heavy_tail(1.0, Duration::from_millis(2), 0.0, Duration::from_millis(20));
        // sigma = 0 makes the tail draw exactly the median, so every
        // envelope is held for stall + median.
        assert_eq!(c.fate(0, 1, 1).stall, Duration::from_millis(6));
    }

    #[test]
    fn storage_fates_are_pure_and_seed_sensitive() {
        let c = StorageChaos::seeded(9)
            .with_transient(0.2)
            .with_torn_put(0.2)
            .with_corrupt_put(0.2);
        for op in 0..200u64 {
            assert_eq!(c.fate(op), c.fate(op), "op {op} must replay");
        }
        let d = StorageChaos::seeded(10)
            .with_transient(0.2)
            .with_torn_put(0.2)
            .with_corrupt_put(0.2);
        assert!((0..200u64).any(|op| c.fate(op) != d.fate(op)));
    }

    #[test]
    fn storage_rates_are_roughly_honored() {
        let c = StorageChaos::seeded(21).with_transient(0.1);
        let failed = (0..10_000u64).filter(|&op| c.fate(op).transient).count();
        assert!((700..1300).contains(&failed), "transient={failed}");
        // A fault-free model injects nothing.
        let quiet = StorageChaos::seeded(21);
        assert!((0..1000u64).all(|op| {
            let f = quiet.fate(op);
            !f.unavailable && !f.transient && !f.torn && f.flip_bit.is_none()
                && f.spike == Duration::ZERO
        }));
    }

    #[test]
    fn outage_windows_cover_only_their_ops() {
        let c = StorageChaos::seeded(1).with_outage(10, 20).with_outage(40, 41);
        assert!(!c.fate(9).unavailable);
        assert!(c.fate(10).unavailable);
        assert!(c.fate(19).unavailable);
        assert!(!c.fate(20).unavailable);
        assert!(c.fate(40).unavailable);
        assert!(!c.fate(41).unavailable);
    }

    #[test]
    fn latency_spikes_apply_their_duration() {
        let c = StorageChaos::seeded(4).with_latency_spike(1.0, Duration::from_millis(3));
        assert_eq!(c.fate(0).spike, Duration::from_millis(3));
        let rare = StorageChaos::seeded(4).with_latency_spike(0.05, Duration::from_millis(3));
        let spiked = (0..10_000u64)
            .filter(|&op| rare.fate(op).spike > Duration::ZERO)
            .count();
        assert!((300..800).contains(&spiked), "spiked={spiked}");
    }

    #[test]
    fn partitions_sever_only_crossing_links_in_window() {
        let p = Partition { group: vec![0, 1], from_seq: 10, to_seq: 20 };
        assert!(p.severs(0, 2, 10));
        assert!(p.severs(2, 1, 19));
        assert!(!p.severs(0, 1, 15)); // same side
        assert!(!p.severs(2, 3, 15)); // same side
        assert!(!p.severs(0, 2, 9)); // before window
        assert!(!p.severs(0, 2, 20)); // after window
        let c = ChaosConfig::seeded(1).with_partition(p);
        assert!(c.fate(0, 2, 12).severed);
        assert!(!c.fate(0, 2, 12).dropped, "severed is not double-counted");
    }
}
