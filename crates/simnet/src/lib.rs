//! # lclog-simnet
//!
//! An in-memory simulated cluster fabric standing in for the paper's
//! testbed network (100 Mb Ethernet between 4–32 PCs).
//!
//! Guarantees and failure model:
//!
//! * **Per-pair FIFO**: messages from `src` to `dst` arrive in send
//!   order, like a TCP byte stream under MPICH. Messages from
//!   *different* senders may interleave arbitrarily — and under the
//!   [`DeliveryModel::Delayed`] courier they are actively reordered
//!   with seeded jitter, which is exactly the non-determinism the
//!   paper's protocols must tolerate.
//! * **Reliable between live endpoints**: a message sent while the
//!   destination's current incarnation stays alive is delivered —
//!   unless a [`ChaosConfig`] is installed, in which case the fabric
//!   turns adversarial: seeded per-link drop / duplicate / bit-flip
//!   corruption, transient partitions, and courier stalls, all
//!   replayable under the same seed. The reliability layer above the
//!   fabric (in `lclog-runtime`) is responsible for masking these.
//! * **Crash = lost volatile state**: [`SimNet::kill`] drops the
//!   endpoint, its queued messages, and everything in flight towards
//!   it. A later [`SimNet::respawn`] creates a fresh incarnation with
//!   an empty inbox — message logs and checkpoints live in other
//!   crates, never in the fabric.
//!
//! The fabric does not interpret payloads; the rollback-recovery layer
//! encodes its own headers inside [`Envelope::payload`].
//!
//! ## Example
//!
//! ```
//! use lclog_simnet::{NetConfig, SimNet};
//! use bytes::Bytes;
//! use std::time::Duration;
//!
//! let net = SimNet::new(2, NetConfig::direct());
//! let ep0 = net.attach(0);
//! let ep1 = net.attach(1);
//! net.send(0, 1, Bytes::from_static(b"hi")).unwrap();
//! let env = ep1.recv_timeout(Duration::from_secs(1)).unwrap();
//! assert_eq!(env.src, 0);
//! assert_eq!(&env.payload[..], b"hi");
//! drop(ep0);
//! ```

#![warn(missing_docs)]

mod chaos;
mod clock;
mod config;
mod courier;
mod envelope;
mod net;
mod stats;

pub use chaos::{ChaosConfig, OutageWindow, Partition, StorageChaos, StorageFate};
pub use clock::SimClock;
pub use config::{DeliveryModel, NetConfig};
pub use envelope::Envelope;
pub use net::{Endpoint, RecvError, SendError, SimNet};
pub use stats::NetStats;

/// Identifier of a simulated process (0-based, dense).
pub type Rank = usize;
