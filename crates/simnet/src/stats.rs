use std::sync::atomic::{AtomicU64, Ordering};

/// Fabric-level traffic counters.
///
/// All counters are monotonic and updated with relaxed atomics; they
/// are read once at the end of an experiment, so no ordering beyond
/// eventual visibility is required.
#[derive(Debug, Default)]
pub struct NetStats {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_delivered: AtomicU64,
    msgs_dropped_dead: AtomicU64,
}

impl NetStats {
    pub(crate) fn record_send(&self, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_delivered(&self) {
        self.msgs_delivered.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_dropped_dead(&self) {
        self.msgs_dropped_dead.fetch_add(1, Ordering::Relaxed);
    }

    /// Envelopes accepted by `send`.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent.load(Ordering::Relaxed)
    }

    /// Total payload bytes accepted by `send`.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Envelopes placed into a live destination inbox.
    pub fn msgs_delivered(&self) -> u64 {
        self.msgs_delivered.load(Ordering::Relaxed)
    }

    /// Envelopes dropped because the destination was dead at delivery
    /// time (the crash-loss model).
    pub fn msgs_dropped_dead(&self) -> u64 {
        self.msgs_dropped_dead.load(Ordering::Relaxed)
    }
}
