use std::sync::atomic::{AtomicU64, Ordering};

/// Fabric-level traffic counters.
///
/// All counters are monotonic and updated with relaxed atomics; they
/// are read once at the end of an experiment, so no ordering beyond
/// eventual visibility is required.
#[derive(Debug, Default)]
pub struct NetStats {
    msgs_sent: AtomicU64,
    bytes_sent: AtomicU64,
    msgs_delivered: AtomicU64,
    msgs_dropped_dead: AtomicU64,
    chaos_dropped: AtomicU64,
    chaos_duplicated: AtomicU64,
    chaos_corrupted: AtomicU64,
    chaos_stalled: AtomicU64,
    partition_dropped: AtomicU64,
    retransmits: AtomicU64,
}

impl NetStats {
    pub(crate) fn record_send(&self, bytes: usize) {
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.bytes_sent.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_delivered(&self) {
        self.msgs_delivered.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_dropped_dead(&self) {
        self.msgs_dropped_dead.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_chaos_dropped(&self) {
        self.chaos_dropped.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_chaos_duplicated(&self) {
        self.chaos_duplicated.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_chaos_corrupted(&self) {
        self.chaos_corrupted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_chaos_stalled(&self) {
        self.chaos_stalled.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_partition_dropped(&self) {
        self.partition_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one transport-level retransmission. Public because the
    /// reliability layer above the fabric drives retransmissions.
    pub fn record_retransmit(&self) {
        self.retransmits.fetch_add(1, Ordering::Relaxed);
    }

    /// Envelopes accepted by `send`.
    pub fn msgs_sent(&self) -> u64 {
        self.msgs_sent.load(Ordering::Relaxed)
    }

    /// Total payload bytes accepted by `send`.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Envelopes placed into a live destination inbox.
    pub fn msgs_delivered(&self) -> u64 {
        self.msgs_delivered.load(Ordering::Relaxed)
    }

    /// Envelopes dropped because the destination was dead at delivery
    /// time (the crash-loss model).
    pub fn msgs_dropped_dead(&self) -> u64 {
        self.msgs_dropped_dead.load(Ordering::Relaxed)
    }

    /// Envelopes the chaos model silently dropped.
    pub fn chaos_dropped(&self) -> u64 {
        self.chaos_dropped.load(Ordering::Relaxed)
    }

    /// Envelopes the chaos model delivered twice.
    pub fn chaos_duplicated(&self) -> u64 {
        self.chaos_duplicated.load(Ordering::Relaxed)
    }

    /// Envelopes the chaos model bit-flipped in transit.
    pub fn chaos_corrupted(&self) -> u64 {
        self.chaos_corrupted.load(Ordering::Relaxed)
    }

    /// Envelopes the chaos model stalled in the courier.
    pub fn chaos_stalled(&self) -> u64 {
        self.chaos_stalled.load(Ordering::Relaxed)
    }

    /// Envelopes severed by a transient partition window.
    pub fn partition_dropped(&self) -> u64 {
        self.partition_dropped.load(Ordering::Relaxed)
    }

    /// Transport-level retransmissions recorded by the layer above.
    pub fn retransmits(&self) -> u64 {
        self.retransmits.load(Ordering::Relaxed)
    }
}
