//! The courier thread behind the non-direct delivery models.
//!
//! Two timing disciplines:
//!
//! * [`Timing::Delayed`] — per-message latency `base + per_kib ×
//!   ceil(len/1 KiB) + U(0..jitter)` (seeded). Messages from different
//!   senders reorder freely — the adversarial condition the paper's
//!   recovery path must handle.
//! * [`Timing::SharedBus`] — one shared medium: transmissions
//!   serialize at the bus bandwidth, then propagate with a fixed
//!   latency. A large frame delays *all* subsequent traffic, the
//!   contention effect the paper attributes to BT's big messages.
//!
//! Both disciplines clamp scheduled times to be non-decreasing per
//! `(src, dst)` pair so per-pair FIFO survives.

use crate::net::Fabric;
use crate::Envelope;
use crossbeam::channel::{self, RecvTimeoutError, Sender};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Which timing discipline the courier applies.
pub(crate) enum Timing {
    /// Independent per-message delays with seeded jitter.
    Delayed {
        base: Duration,
        per_kib: Duration,
        jitter: Duration,
        seed: u64,
    },
    /// Serialized shared medium plus propagation latency.
    SharedBus {
        latency: Duration,
        bytes_per_sec: u64,
    },
}

struct Scheduled {
    due: Instant,
    /// Tie-breaker keeping heap order deterministic for equal `due`.
    order: u64,
    env: Envelope,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.order == other.order
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.due, self.order).cmp(&(other.due, other.order))
    }
}

pub(crate) struct Courier {
    tx: Option<Sender<(Envelope, Duration)>>,
    handle: Option<JoinHandle<()>>,
}

impl Courier {
    pub(crate) fn spawn(fabric: Arc<Fabric>, n: usize, timing: Timing) -> Self {
        let (tx, rx) = channel::unbounded::<(Envelope, Duration)>();
        let handle = std::thread::Builder::new()
            .name("simnet-courier".into())
            .spawn(move || {
                let mut rng = StdRng::seed_from_u64(match &timing {
                    Timing::Delayed { seed, .. } => *seed,
                    Timing::SharedBus { .. } => 0,
                });
                let mut heap: BinaryHeap<Reverse<Scheduled>> = BinaryHeap::new();
                let mut pair_floor: Vec<Instant> = vec![Instant::now(); n * n];
                // Shared-bus state: the instant the medium frees up.
                let mut bus_free = Instant::now();
                let mut order: u64 = 0;
                loop {
                    // Wait for new input until the earliest scheduled
                    // delivery is due.
                    let next = match heap.peek() {
                        Some(Reverse(s)) => {
                            let now = Instant::now();
                            if s.due <= now {
                                let Reverse(s) = heap.pop().expect("peeked");
                                fabric.deliver(s.env);
                                continue;
                            }
                            Some(s.due - now)
                        }
                        None => None,
                    };
                    let received = match next {
                        Some(wait) => rx.recv_timeout(wait),
                        None => rx.recv().map_err(|_| RecvTimeoutError::Disconnected),
                    };
                    match received {
                        Ok((env, stall)) => {
                            let now = Instant::now();
                            let mut due = match &timing {
                                Timing::Delayed {
                                    base,
                                    per_kib,
                                    jitter,
                                    ..
                                } => {
                                    let extra = if jitter.is_zero() {
                                        Duration::ZERO
                                    } else {
                                        Duration::from_nanos(
                                            rng.gen_range(0..jitter.as_nanos() as u64),
                                        )
                                    };
                                    let kib = env.len().div_ceil(1024) as u32;
                                    now + *base + *per_kib * kib + extra
                                }
                                Timing::SharedBus {
                                    latency,
                                    bytes_per_sec,
                                } => {
                                    let start = bus_free.max(now);
                                    let tx_ns = (env.len() as u128)
                                        .saturating_mul(1_000_000_000)
                                        / (*bytes_per_sec as u128).max(1);
                                    let tx_time = Duration::from_nanos(tx_ns as u64);
                                    bus_free = start + tx_time;
                                    bus_free + *latency
                                }
                            };
                            // Chaos stall: hold the envelope in flight.
                            due += stall;
                            // Clamp to preserve per-pair FIFO.
                            let idx = env.src * n + env.dst;
                            if due < pair_floor[idx] {
                                due = pair_floor[idx];
                            }
                            pair_floor[idx] = due + Duration::from_nanos(1);
                            order += 1;
                            heap.push(Reverse(Scheduled { due, order, env }));
                        }
                        Err(RecvTimeoutError::Timeout) => {}
                        Err(RecvTimeoutError::Disconnected) => {
                            // Fabric is shutting down: flush whatever
                            // remains in schedule order, then exit.
                            while let Some(Reverse(s)) = heap.pop() {
                                fabric.deliver(s.env);
                            }
                            return;
                        }
                    }
                }
            })
            .expect("spawn courier thread");
        Courier {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    pub(crate) fn submit(&self, env: Envelope, stall: Duration) {
        // The courier thread only exits when all senders are dropped,
        // so this cannot fail while `Courier` is alive.
        let _ = self
            .tx
            .as_ref()
            .expect("courier sender present until drop")
            .send((env, stall));
    }
}

impl Drop for Courier {
    fn drop(&mut self) {
        // Disconnect the input channel first so the thread flushes its
        // schedule and exits, then join it to guarantee every accepted
        // envelope reached an inbox before the fabric disappears.
        self.tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}
