use crate::chaos::ChaosConfig;
use std::time::Duration;

/// How the fabric moves envelopes from sender to receiver.
#[derive(Debug, Clone)]
pub enum DeliveryModel {
    /// Hand the envelope to the destination inbox synchronously inside
    /// `send`. Fast and deterministic-ish; used for overhead-counting
    /// experiments (Fig. 6/7) where transport time is irrelevant.
    Direct,
    /// Route every envelope through a courier thread that imposes a
    /// latency of `base + per_kib * ceil(len/1024) + U(0..jitter)`
    /// (seeded), actively reordering messages from different senders.
    /// Used for recovery and blocking experiments (Fig. 8) and for
    /// adversarial reordering tests.
    Delayed {
        /// Fixed latency component.
        base: Duration,
        /// Additional latency per KiB of payload (models 100 Mb
        /// Ethernet-style bandwidth limits; the paper's Fig. 8 notes
        /// big BT messages block longer).
        per_kib: Duration,
        /// Upper bound of the uniform random jitter term.
        jitter: Duration,
        /// RNG seed so runs are reproducible.
        seed: u64,
    },
    /// A single shared medium, like the paper's 100 Mb Ethernet
    /// segment: transmissions serialize on the bus (one frame at a
    /// time at `bytes_per_sec`), then propagate with `latency`. Big
    /// messages delay *everyone's* traffic — the contention effect
    /// behind the paper's Fig. 8 discussion of BT.
    SharedBus {
        /// Propagation latency after transmission completes.
        latency: Duration,
        /// Bus bandwidth.
        bytes_per_sec: u64,
    },
    /// Deterministic-simulation mode: `send` parks the envelope in a
    /// per-`(src, dst)` FIFO inside the fabric and *nothing* moves it
    /// until an external scheduler calls [`SimNet::held_deliver`] (or
    /// [`SimNet::held_deliver_all`]). No courier thread, no wall-clock
    /// timing — arrival order is exactly the scheduler's decision
    /// sequence, so a run is a pure function of `(topology, workload,
    /// schedule)`. Chaos fates (seeded) still apply at send time.
    ///
    /// [`SimNet::held_deliver`]: crate::SimNet::held_deliver
    /// [`SimNet::held_deliver_all`]: crate::SimNet::held_deliver_all
    Held,
}

/// Fabric configuration.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Delivery model for data envelopes.
    pub delivery: DeliveryModel,
    /// Seeded fault-injection model; `None` means a faithful fabric.
    pub chaos: Option<ChaosConfig>,
}

impl NetConfig {
    /// Zero-latency synchronous delivery.
    pub fn direct() -> Self {
        NetConfig {
            delivery: DeliveryModel::Direct,
            chaos: None,
        }
    }

    /// Courier delivery with the given parameters.
    pub fn delayed(base: Duration, per_kib: Duration, jitter: Duration, seed: u64) -> Self {
        NetConfig {
            delivery: DeliveryModel::Delayed {
                base,
                per_kib,
                jitter,
                seed,
            },
            chaos: None,
        }
    }

    /// Scheduler-held delivery for deterministic simulation: envelopes
    /// park per-channel until [`SimNet::held_deliver`] releases them.
    ///
    /// [`SimNet::held_deliver`]: crate::SimNet::held_deliver
    pub fn held() -> Self {
        NetConfig {
            delivery: DeliveryModel::Held,
            chaos: None,
        }
    }

    /// Enables the seeded chaos fault model on this fabric.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = Some(chaos);
        self
    }

    /// A mild default courier: 50 µs base, 20 µs/KiB, 100 µs jitter.
    /// Scaled-down stand-in for the paper's 100 Mb LAN.
    pub fn lan_like(seed: u64) -> Self {
        Self::delayed(
            Duration::from_micros(50),
            Duration::from_micros(20),
            Duration::from_micros(100),
            seed,
        )
    }

    /// A shared-medium fabric. A scaled-down stand-in for the paper's
    /// shared 100 Mb Ethernet segment: 30 µs propagation, 1 GiB/s bus
    /// (≈ 100 Mb Ethernet time-compressed 100×, keeping the
    /// contention *shape* while letting runs finish quickly).
    pub fn shared_bus() -> Self {
        NetConfig {
            delivery: DeliveryModel::SharedBus {
                latency: Duration::from_micros(30),
                bytes_per_sec: 1 << 30,
            },
            chaos: None,
        }
    }
}

impl Default for NetConfig {
    fn default() -> Self {
        Self::direct()
    }
}
