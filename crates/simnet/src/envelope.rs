use crate::Rank;
use bytes::Bytes;

/// A message in flight on the fabric.
///
/// `seq` is a fabric-level sequence number unique per `(src, dst)`
/// pair and monotonically increasing in send order; the courier uses
/// it to preserve per-pair FIFO while reordering across pairs, and
/// tests use it to assert the FIFO guarantee. Protocol-level indices
/// (send_index etc.) live inside `payload` and are independent of it.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Per `(src, dst)` fabric sequence number, starting at 1.
    pub seq: u64,
    /// Opaque payload owned by the layers above.
    pub payload: Bytes,
}

impl Envelope {
    /// Total payload size in bytes (what the delay model charges for).
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}
