use crate::Rank;
use bytes::Bytes;

/// A message in flight on the fabric.
///
/// `seq` is a fabric-level sequence number unique per `(src, dst)`
/// pair and monotonically increasing in send order; the courier uses
/// it to preserve per-pair FIFO while reordering across pairs, and
/// tests use it to assert the FIFO guarantee. Protocol-level indices
/// (send_index etc.) live inside `payload` and are independent of it.
/// The logical frame is the concatenation `payload ++ body`. Most
/// envelopes carry a single contiguous buffer (`body` empty); the
/// zero-copy resend path sends a small fresh header in `payload` and a
/// refcounted window into an existing allocation (sender log entry) in
/// `body`, avoiding any payload copy. The fabric treats the pair as
/// one unit: chaos corruption picks a bit across both segments and the
/// delay model charges for their combined size.
#[derive(Debug, Clone)]
pub struct Envelope {
    /// Sending rank.
    pub src: Rank,
    /// Destination rank.
    pub dst: Rank,
    /// Per `(src, dst)` fabric sequence number, starting at 1.
    pub seq: u64,
    /// First (or only) segment of the frame.
    pub payload: Bytes,
    /// Optional second segment (zero-copy tail); empty for
    /// single-buffer frames.
    pub body: Bytes,
}

impl Envelope {
    /// Total frame size in bytes across both segments (what the delay
    /// model charges for).
    pub fn len(&self) -> usize {
        self.payload.len() + self.body.len()
    }

    /// True when the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty() && self.body.is_empty()
    }

    /// The frame as one contiguous buffer. Zero-copy when `body` is
    /// empty; otherwise the segments are joined into a fresh
    /// allocation (diagnostic/test use — the hot path reads segments
    /// in place).
    pub fn contiguous(&self) -> Bytes {
        if self.body.is_empty() {
            self.payload.clone()
        } else {
            let mut joined = Vec::with_capacity(self.len());
            joined.extend_from_slice(&self.payload);
            joined.extend_from_slice(&self.body);
            Bytes::from(joined)
        }
    }
}
