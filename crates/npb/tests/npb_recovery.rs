//! Recovery correctness on the paper's actual workloads: every
//! benchmark × protocol combination must produce bit-identical
//! digests with and without injected failures.

use lclog_core::ProtocolKind;
use lclog_npb::{run_benchmark, Benchmark, Class};
use lclog_runtime::{CheckpointPolicy, ClusterConfig, CommMode, FailurePlan, RunConfig};
use lclog_simnet::NetConfig;

fn cfg(n: usize, kind: ProtocolKind) -> ClusterConfig {
    ClusterConfig::new(
        n,
        RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(5)),
    )
}

fn clean_digests(bench: Benchmark, n: usize, kind: ProtocolKind) -> Vec<u64> {
    run_benchmark(bench, Class::Test, &cfg(n, kind))
        .expect("fault-free run")
        .digests
}

#[test]
fn digests_are_protocol_independent() {
    for bench in Benchmark::ALL {
        let tdi = clean_digests(bench, 4, ProtocolKind::Tdi);
        let tag = clean_digests(bench, 4, ProtocolKind::Tag);
        let tel = clean_digests(bench, 4, ProtocolKind::Tel);
        assert_eq!(tdi, tag, "{bench}: TAG deviates");
        assert_eq!(tdi, tel, "{bench}: TEL deviates");
    }
}

#[test]
fn digests_scale_with_decomposition_determinism() {
    // Same benchmark, different rank counts → different digests per
    // rank, but every run at the same count is identical.
    for bench in Benchmark::ALL {
        let a = clean_digests(bench, 4, ProtocolKind::Tdi);
        let b = clean_digests(bench, 4, ProtocolKind::Tdi);
        assert_eq!(a, b, "{bench}: nondeterministic digest");
    }
}

fn assert_recovers(bench: Benchmark, kind: ProtocolKind, victim: usize, at_step: u64) {
    let n = 4;
    let clean = clean_digests(bench, n, kind);
    let config = cfg(n, kind).with_failures(FailurePlan::kill_at(victim, at_step));
    let report = run_benchmark(bench, Class::Test, &config).expect("recovered run");
    assert_eq!(report.kills, 1, "{bench}/{kind}: kill did not fire");
    assert_eq!(
        report.digests, clean,
        "{bench}/{kind}: recovery changed the result"
    );
}

#[test]
fn lu_recovers_under_every_protocol() {
    for kind in ProtocolKind::ALL {
        assert_recovers(Benchmark::Lu, kind, 1, 9);
    }
}

#[test]
fn bt_recovers_under_every_protocol() {
    for kind in ProtocolKind::ALL {
        assert_recovers(Benchmark::Bt, kind, 2, 6);
    }
}

#[test]
fn sp_recovers_under_every_protocol() {
    for kind in ProtocolKind::ALL {
        assert_recovers(Benchmark::Sp, kind, 3, 8);
    }
}

#[test]
fn lu_multi_failure_recovers() {
    let n = 4;
    let clean = clean_digests(Benchmark::Lu, n, ProtocolKind::Tdi);
    let config = cfg(n, ProtocolKind::Tdi)
        .with_failures(FailurePlan::kill_at(1, 8).and_kill(2, 8));
    let report = run_benchmark(Benchmark::Lu, Class::Test, &config).expect("recovered run");
    assert_eq!(report.kills, 2);
    assert_eq!(report.digests, clean);
}

#[test]
fn bt_blocking_mode_recovers() {
    // BT's faces exceed the eager threshold → rendezvous waits under
    // Fig. 4a, plus a failure.
    let n = 4;
    let run = RunConfig::new(ProtocolKind::Tdi)
        .with_comm(CommMode::Blocking {
            eager_threshold: 1024,
        })
        .with_checkpoint(CheckpointPolicy::EverySteps(5));
    let base = ClusterConfig::new(n, run);
    let clean = run_benchmark(Benchmark::Bt, Class::Test, &base)
        .unwrap()
        .digests;
    let config = base.with_failures(FailurePlan::kill_at(1, 6));
    let report = run_benchmark(Benchmark::Bt, Class::Test, &config).expect("recovered run");
    assert_eq!(report.digests, clean);
}

#[test]
fn lu_reordering_fabric_recovers() {
    let n = 4;
    let base = cfg(n, ProtocolKind::Tdi).with_net(NetConfig::lan_like(0xBEEF));
    let clean = run_benchmark(Benchmark::Lu, Class::Test, &base)
        .unwrap()
        .digests;
    let config = base.with_failures(FailurePlan::kill_at(2, 10));
    let report = run_benchmark(Benchmark::Lu, Class::Test, &config).expect("recovered run");
    assert_eq!(report.digests, clean);
}

#[test]
fn workload_characters_match_the_paper() {
    // §IV: LU has the highest message frequency; BT the largest
    // messages. Verified from the cluster's traffic accounting.
    let n = 4;
    let lu = run_benchmark(Benchmark::Lu, Class::Test, &cfg(n, ProtocolKind::Tdi)).unwrap();
    let bt = run_benchmark(Benchmark::Bt, Class::Test, &cfg(n, ProtocolKind::Tdi)).unwrap();
    let sp = run_benchmark(Benchmark::Sp, Class::Test, &cfg(n, ProtocolKind::Tdi)).unwrap();
    assert!(
        lu.stats.sends > sp.stats.sends && sp.stats.sends > bt.stats.sends,
        "message frequency must order LU ({}) > SP ({}) > BT ({})",
        lu.stats.sends,
        sp.stats.sends,
        bt.stats.sends
    );
    let avg_bytes = |r: &lclog_runtime::RunReport| r.net_bytes as f64 / r.net_msgs as f64;
    assert!(
        avg_bytes(&bt) > avg_bytes(&sp) && avg_bytes(&sp) > avg_bytes(&lu),
        "message size must order BT ({:.0}) > SP ({:.0}) > LU ({:.0})",
        avg_bytes(&bt),
        avg_bytes(&sp),
        avg_bytes(&lu)
    );
}

#[test]
fn eight_rank_lu_recovers() {
    let n = 8;
    let clean = clean_digests(Benchmark::Lu, n, ProtocolKind::Tdi);
    let config = cfg(n, ProtocolKind::Tdi).with_failures(FailurePlan::kill_at(5, 12));
    let report = run_benchmark(Benchmark::Lu, Class::Test, &config).expect("recovered run");
    assert_eq!(report.digests, clean);
}

#[test]
fn bt_shared_bus_contention_recovers() {
    // The paper's 100 Mb shared-Ethernet effect: BT's big faces
    // serialize on the bus; recovery must still be exact.
    let base = cfg(4, ProtocolKind::Tdi).with_net(NetConfig::shared_bus());
    let clean = run_benchmark(Benchmark::Bt, Class::Test, &base)
        .unwrap()
        .digests;
    let report = run_benchmark(
        Benchmark::Bt,
        Class::Test,
        &base.with_failures(FailurePlan::kill_at(2, 6)),
    )
    .expect("recovered run");
    assert_eq!(report.digests, clean);
}
