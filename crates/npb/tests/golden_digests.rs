//! Golden-digest regression table: the Test-class kernels are fully
//! deterministic (fixed IEEE-754 operation order, rank-ordered
//! collective folds), so their per-rank digests are bit-stable across
//! runs, protocols, schedules, recoveries — and releases. Any change
//! to the numerics or the communication structure of a kernel shows
//! up here as an explicit, reviewable diff.

use lclog_core::ProtocolKind;
use lclog_npb::{run_benchmark, Benchmark, Class};
use lclog_runtime::{ClusterConfig, RunConfig};

type Golden = (Benchmark, usize, &'static [u64]);

const GOLDEN: &[Golden] = &[
        (Benchmark::Lu, 1, &[0x71a2f5105600a44f]),
        (Benchmark::Lu, 2, &[0x3b623103754a610a, 0xaa161318a04618a1]),
        (Benchmark::Lu, 4, &[0x7c08588120bec8ed, 0xed44e27ed016dc82, 0x3157ecab35eb8d16, 0xdbe7a3864fe0ddc0]),
        (Benchmark::Lu, 8, &[0x33fe6239752aafb5, 0xa7c21a7edeead119, 0xe038b1d71f3c1033, 0x90708e26054de2d1, 0xeed825b4209ea987, 0xf8c0519de0081336, 0x9b95cdeb6d3184eb, 0x1cd822e5cb924d55]),
        (Benchmark::Bt, 1, &[0xc3f411f87988dca4]),
        (Benchmark::Bt, 2, &[0x8893d4643cb4bee6, 0x7241131187118c0a]),
        (Benchmark::Bt, 4, &[0x3187242eee6d269b, 0xb1e381ff94ffcb9e, 0xb0ac80404fd7ee7e, 0xab2aec763d593770]),
        (Benchmark::Bt, 8, &[0x34b4173edde007be, 0x8f09a53d5eb10cd2, 0xa177dee34fd21978, 0xc4cd7c77b0dead73, 0x5d38006b3cc3f933, 0x884b77b34b2cfbe1, 0x39a6e32d2811147c, 0xba6cbe728c179450]),
        (Benchmark::Sp, 1, &[0x89809cfa8ec6b849]),
        (Benchmark::Sp, 2, &[0xeab0f4e5dbe96f7e, 0x58322fd4da4e2bed]),
        (Benchmark::Sp, 4, &[0xcce27bb16fbf6888, 0xa596856694ffb5db, 0x5fedaf0dabb1cf4c, 0x766e8bf9d860fb4d]),
        (Benchmark::Sp, 8, &[0x9a8c28f85f845cf5, 0x69d42f7321e3bbc5, 0xae27177dfac96041, 0x250a1e2b0cff033b, 0x5af183a865ddb624, 0xf096e7a6893faf98, 0x1a71576e46f7a02b, 0x8a37323af587f6c7]),
        (Benchmark::Cg, 1, &[0x68967b487280bc97]),
        (Benchmark::Cg, 2, &[0xa916d29c6eb88c25, 0xe8094913763f6684]),
        (Benchmark::Cg, 4, &[0x1b2896b6dbadd77, 0x5ddf7ec525aebbbd, 0x71ea34c430fcc49e, 0xd3d7bac6d0f65ecc]),
        (Benchmark::Cg, 8, &[0x97440d9a5105bde7, 0x594795c391e2834d, 0xcb993c7dad1d8715, 0x37cc1721d61428b4, 0x20873fcc4e0e105b, 0xc16d951b274b8ab9, 0x5f8202068044e15c, 0xc82c15b0d6680516]),
];

#[test]
fn test_class_digests_match_golden_table() {
    for (bench, n, expected) in GOLDEN {
        let cfg = ClusterConfig::new(*n, RunConfig::new(ProtocolKind::Tdi));
        let got = run_benchmark(*bench, Class::Test, &cfg).expect("golden run").digests;
        assert_eq!(&got[..], *expected, "{bench} n={n}: kernel numerics changed");
    }
}

#[test]
fn golden_table_covers_all_benchmarks() {
    for bench in Benchmark::EXTENDED {
        assert!(
            GOLDEN.iter().any(|(b, _, _)| *b == bench),
            "{bench} missing from the golden table"
        );
    }
}
