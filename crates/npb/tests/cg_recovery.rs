//! Recovery correctness for the CG extension workload — its
//! collective-dominated pattern (two `ANY_SOURCE` all-reduces per
//! iteration) is the hardest case for relaxed-order recovery.

use lclog_core::ProtocolKind;
use lclog_npb::{run_benchmark, Benchmark, Class};
use lclog_runtime::{CheckpointPolicy, ClusterConfig, FailurePlan, RunConfig};
use lclog_simnet::NetConfig;

fn cfg(n: usize, kind: ProtocolKind) -> ClusterConfig {
    ClusterConfig::new(
        n,
        RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(3)),
    )
}

#[test]
fn cg_digests_protocol_independent() {
    let reference = run_benchmark(Benchmark::Cg, Class::Test, &cfg(4, ProtocolKind::Tdi))
        .unwrap()
        .digests;
    for kind in [
        ProtocolKind::Tag,
        ProtocolKind::Tel,
        ProtocolKind::TagF(1),
        ProtocolKind::Pessim,
    ] {
        let got = run_benchmark(Benchmark::Cg, Class::Test, &cfg(4, kind))
            .unwrap()
            .digests;
        assert_eq!(got, reference, "{kind} deviates on CG");
    }
}

#[test]
fn cg_recovers_under_every_protocol() {
    for kind in ProtocolKind::EXTENDED {
        let clean = run_benchmark(Benchmark::Cg, Class::Test, &cfg(4, kind))
            .unwrap()
            .digests;
        let report = run_benchmark(
            Benchmark::Cg,
            Class::Test,
            &cfg(4, kind).with_failures(FailurePlan::kill_at(1, 5)),
        )
        .expect("recovered run");
        assert_eq!(report.kills, 1, "{kind}");
        assert_eq!(report.digests, clean, "{kind}: CG recovery diverged");
    }
}

#[test]
fn cg_root_failure_mid_allreduce_window() {
    // Rank 0 is the reduce root: killing it stresses the ANY_SOURCE
    // gather recovery specifically.
    let clean = run_benchmark(Benchmark::Cg, Class::Test, &cfg(5, ProtocolKind::Tdi))
        .unwrap()
        .digests;
    let report = run_benchmark(
        Benchmark::Cg,
        Class::Test,
        &cfg(5, ProtocolKind::Tdi).with_failures(FailurePlan::kill_at(0, 6)),
    )
    .expect("recovered run");
    assert_eq!(report.digests, clean);
}

#[test]
fn cg_reordering_fabric_multi_failure() {
    let base = cfg(4, ProtocolKind::Tdi).with_net(NetConfig::lan_like(0xC6));
    let clean = run_benchmark(Benchmark::Cg, Class::Test, &base).unwrap().digests;
    let plan = FailurePlan::kill_at(1, 4).and_kill(2, 6);
    let report = run_benchmark(Benchmark::Cg, Class::Test, &base.with_failures(plan))
        .expect("recovered run");
    assert_eq!(report.kills, 2);
    assert_eq!(report.digests, clean);
}

#[test]
fn cg_is_collective_dominated() {
    // Character check: CG's allreduce traffic means rank 0 (the
    // reduce root) touches every message round; per-iteration message
    // count scales with n rather than with the subdomain surface.
    let r4 = run_benchmark(Benchmark::Cg, Class::Test, &cfg(4, ProtocolKind::Tdi)).unwrap();
    let r8 = run_benchmark(Benchmark::Cg, Class::Test, &cfg(8, ProtocolKind::Tdi)).unwrap();
    assert!(
        r8.stats.sends as f64 > 1.7 * r4.stats.sends as f64,
        "collective fan-in must scale with n: {} vs {}",
        r8.stats.sends,
        r4.stats.sends
    );
}
