//! Property tests for the NPB substrate types (fields and process
//! grids).

use lclog_npb::{Field3, ProcGrid};
use lclog_wire::{decode_from_slice, encode_to_vec};
use proptest::prelude::*;

fn arb_field() -> impl Strategy<Value = Field3> {
    (1usize..5, 1usize..5, 1usize..4, 1usize..3).prop_flat_map(|(nx, ny, nz, comps)| {
        proptest::collection::vec(-1e6f64..1e6, nx * ny * nz * comps).prop_map(
            move |values| {
                let mut it = values.into_iter();
                Field3::init(nx, ny, nz, comps, |_, _, _, _| it.next().expect("enough values"))
            },
        )
    })
}

proptest! {
    #[test]
    fn prop_field_wire_roundtrip(f in arb_field()) {
        let back: Field3 = decode_from_slice(&encode_to_vec(&f)).unwrap();
        prop_assert_eq!(back, f);
    }

    #[test]
    fn prop_pack_sizes_are_consistent(f in arb_field()) {
        for k in 0..f.nz {
            prop_assert_eq!(f.pack_row(0, k).len(), f.nx * f.comps);
            prop_assert_eq!(f.pack_col(0, k).len(), f.ny * f.comps);
        }
        prop_assert_eq!(f.pack_face_x(f.nx - 1).len(), f.ny * f.nz * f.comps);
        prop_assert_eq!(f.pack_face_y(f.ny - 1).len(), f.nx * f.nz * f.comps);
    }

    #[test]
    fn prop_digest_detects_single_cell_change(
        f in arb_field(),
        c in 0usize..2,
        i in 0usize..4,
        j in 0usize..4,
        k in 0usize..3,
    ) {
        let (c, i, j, k) = (c % f.comps, i % f.nx, j % f.ny, k % f.nz);
        let before = f.digest();
        let mut g = f.clone();
        let old = g.get(c, i, j, k);
        g.set(c, i, j, k, old + 1.0);
        prop_assert_ne!(before, g.digest());
    }

    #[test]
    fn prop_grid_split_partitions_exactly(global in 1usize..200, parts in 1usize..33) {
        let total: usize = (0..parts).map(|i| ProcGrid::split(global, parts, i)).sum();
        prop_assert_eq!(total, global);
        // Offsets are the prefix sums of the splits.
        let mut acc = 0;
        for i in 0..parts {
            prop_assert_eq!(ProcGrid::offset(global, parts, i), acc);
            acc += ProcGrid::split(global, parts, i);
        }
    }

    #[test]
    fn prop_grid_positions_are_bijective(n in 1usize..65) {
        let mut seen = vec![false; n];
        for r in 0..n {
            let g = ProcGrid::new(r, n);
            let back = g.rank_at(g.rx, g.ry);
            prop_assert_eq!(back, r);
            prop_assert!(!seen[back]);
            seen[back] = true;
        }
    }

    #[test]
    fn prop_sum_sq_is_nonnegative_and_zero_only_for_zero(f in arb_field()) {
        prop_assert!(f.sum_sq() >= 0.0);
        let zero = Field3::init(f.nx, f.ny, f.nz, f.comps, |_, _, _, _| 0.0);
        prop_assert_eq!(zero.sum_sq(), 0.0);
    }
}
