//! Recovery correctness for the extension protocols (TAG-f bounded
//! causal tracking and pessimistic logging) on the NPB workloads —
//! they must be exactly as transparent as the paper's three.

use lclog_core::ProtocolKind;
use lclog_npb::{run_benchmark, Benchmark, Class};
use lclog_runtime::{CheckpointPolicy, ClusterConfig, CommMode, FailurePlan, RunConfig};

fn cfg(n: usize, kind: ProtocolKind) -> ClusterConfig {
    ClusterConfig::new(
        n,
        RunConfig::new(kind).with_checkpoint(CheckpointPolicy::EverySteps(5)),
    )
}

#[test]
fn extension_digests_match_the_paper_protocols() {
    for bench in Benchmark::ALL {
        let reference = run_benchmark(bench, Class::Test, &cfg(4, ProtocolKind::Tdi))
            .unwrap()
            .digests;
        for kind in [ProtocolKind::TagF(1), ProtocolKind::TagF(2), ProtocolKind::Pessim] {
            let got = run_benchmark(bench, Class::Test, &cfg(4, kind))
                .unwrap()
                .digests;
            assert_eq!(got, reference, "{bench}/{kind} deviates fault-free");
        }
    }
}

#[test]
fn tagf_recovers_single_failure() {
    for f in [1u32, 2] {
        let kind = ProtocolKind::TagF(f);
        let clean = run_benchmark(Benchmark::Lu, Class::Test, &cfg(4, kind))
            .unwrap()
            .digests;
        let report = run_benchmark(
            Benchmark::Lu,
            Class::Test,
            &cfg(4, kind).with_failures(FailurePlan::kill_at(1, 9)),
        )
        .expect("recovered run");
        assert_eq!(report.kills, 1);
        assert_eq!(report.digests, clean, "TAG-f{f} recovery diverged");
    }
}

#[test]
fn tagf_recovers_f_simultaneous_failures() {
    // The protocol's design point: with f = 2, two simultaneous
    // failures must still leave every needed determinant on a
    // survivor.
    let kind = ProtocolKind::TagF(2);
    let clean = run_benchmark(Benchmark::Lu, Class::Test, &cfg(5, kind))
        .unwrap()
        .digests;
    let plan = FailurePlan::kill_at(1, 8).and_kill(3, 8);
    let report = run_benchmark(Benchmark::Lu, Class::Test, &cfg(5, kind).with_failures(plan))
        .expect("recovered run");
    assert_eq!(report.kills, 2);
    assert_eq!(report.digests, clean);
}

#[test]
fn pessim_recovers_single_failure_all_benchmarks() {
    for bench in Benchmark::ALL {
        let kind = ProtocolKind::Pessim;
        let clean = run_benchmark(bench, Class::Test, &cfg(4, kind))
            .unwrap()
            .digests;
        let report = run_benchmark(
            bench,
            Class::Test,
            &cfg(4, kind).with_failures(FailurePlan::kill_at(2, 7)),
        )
        .expect("recovered run");
        assert_eq!(report.kills, 1);
        assert_eq!(report.digests, clean, "PES {bench} recovery diverged");
    }
}

#[test]
fn pessim_recovers_multi_failure_without_survivor_determinants() {
    // Pessimistic recovery depends only on the logger: even when every
    // peer that ever talked to the victims also dies, replay info
    // survives.
    let kind = ProtocolKind::Pessim;
    let clean = run_benchmark(Benchmark::Lu, Class::Test, &cfg(4, kind))
        .unwrap()
        .digests;
    let plan = FailurePlan::kill_at(0, 8).and_kill(1, 8).and_kill(2, 8);
    let report = run_benchmark(Benchmark::Lu, Class::Test, &cfg(4, kind).with_failures(plan))
        .expect("recovered run");
    assert_eq!(report.kills, 3);
    assert_eq!(report.digests, clean);
}

#[test]
fn pessim_blocking_mode_send_gate_works() {
    let kind = ProtocolKind::Pessim;
    let run = RunConfig::new(kind)
        .with_comm(CommMode::blocking_default())
        .with_checkpoint(CheckpointPolicy::EverySteps(5));
    let base = ClusterConfig::new(4, run);
    let clean = run_benchmark(Benchmark::Sp, Class::Test, &base).unwrap().digests;
    let report = run_benchmark(
        Benchmark::Sp,
        Class::Test,
        &base.with_failures(FailurePlan::kill_at(3, 6)),
    )
    .expect("recovered run");
    assert_eq!(report.digests, clean);
}

#[test]
fn piggyback_ordering_with_extensions() {
    // PES < TDI < TAG-f < TEL < TAG on a collective-heavy workload at
    // this scale: zero piggyback for pessimistic, a bounded plateau
    // for TAG-f.
    let n = 8;
    let ids = |kind| {
        run_benchmark(Benchmark::Sp, Class::Test, &cfg(n, kind))
            .unwrap()
            .stats
            .avg_ids_per_msg()
    };
    let pes = ids(ProtocolKind::Pessim);
    let tdi = ids(ProtocolKind::Tdi);
    let tagf = ids(ProtocolKind::TagF(1));
    let tag = ids(ProtocolKind::Tag);
    assert_eq!(pes, 0.0, "pessimistic logging piggybacks nothing");
    assert_eq!(tdi, n as f64);
    assert!(tagf > tdi, "TAG-f ({tagf}) should exceed TDI ({tdi})");
    assert!(tag > tagf, "TAG ({tag}) should exceed TAG-f ({tagf})");
}
