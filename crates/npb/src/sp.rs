//! SP — the scalar-pentadiagonal ADI kernel.
//!
//! NPB's SP runs the same multi-partition ADI structure as BT but with
//! scalar (not 5×5 block) systems, solved with a forward *and* a
//! backward substitution per direction — twice the exchanges of BT at
//! a fifth of the payload. That yields the paper's "moderate message
//! frequency and checkpoint size, relative to LU and BT". One runtime
//! step = one substitution pass (or the residual all-reduce).

use crate::{Class, Field3, ProcGrid};
use lclog_runtime::collectives::allreduce_sum_f64;
use lclog_runtime::{Fault, RankApp, RankCtx, RecvSpec, StepStatus};
use lclog_wire::impl_wire_struct;

const TAG_X_FWD: u32 = 300;
const TAG_X_BWD: u32 = 301;
const TAG_Y_FWD: u32 = 302;
const TAG_Y_BWD: u32 = 303;
const TAG_NORM_BASE: u32 = 3_000_000;
const BC: f64 = 1.0;

const PHASE_X_FWD: u64 = 0;
const PHASE_X_BWD: u64 = 1;
const PHASE_Y_FWD: u64 = 2;
const PHASE_Y_BWD: u64 = 3;
const PHASE_Z: u64 = 4;
const PHASE_NORM: u64 = 5;

/// The SP application (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct SpApp {
    /// Problem scale.
    pub class: Class,
}

/// Checkpointable per-rank SP state.
#[derive(Debug, Clone, PartialEq)]
pub struct SpState {
    /// Completed outer iterations.
    pub iter: u64,
    /// Current phase.
    pub phase: u64,
    /// Scalar solution block.
    pub u: Field3,
    /// Smoothed residual history.
    pub residual: f64,
}
impl_wire_struct!(SpState {
    iter,
    phase,
    u,
    residual
});

impl RankApp for SpApp {
    type State = SpState;

    fn init(&self, rank: usize, n: usize) -> SpState {
        let (gn, _) = self.class.adi_dims();
        let g = ProcGrid::new(rank, n);
        let nx = ProcGrid::split(gn, g.px, g.rx);
        let ny = ProcGrid::split(gn, g.py, g.ry);
        let x0 = ProcGrid::offset(gn, g.px, g.rx);
        let y0 = ProcGrid::offset(gn, g.py, g.ry);
        let u = Field3::init(nx, ny, gn, 1, |_, i, j, k| {
            1.0 + 0.015 * ((x0 + i) as f64 * 0.9 + (y0 + j) as f64 * 1.1 + k as f64 * 0.6) % 1.9
        });
        SpState {
            iter: 0,
            phase: PHASE_X_FWD,
            u,
            residual: 0.0,
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut SpState) -> Result<StepStatus, Fault> {
        let (_, iters) = self.class.adi_dims();
        if state.iter >= iters {
            return Ok(StepStatus::Done);
        }
        let g = ProcGrid::new(ctx.rank(), ctx.n());
        let u = &mut state.u;
        match state.phase {
            PHASE_X_FWD => {
                let ghost: Vec<f64> = match g.west() {
                    Some(wr) => ctx.recv_value(RecvSpec::from(wr, TAG_X_FWD))?.1,
                    None => vec![BC; u.ny * u.nz],
                };
                for _ in 0..self.class.inner_reps() {
                    pass_x(u, &ghost, true);
                }
                if let Some(er) = g.east() {
                    ctx.send_value(er, TAG_X_FWD, &u.pack_face_x(u.nx - 1))?;
                }
                state.phase = PHASE_X_BWD;
            }
            PHASE_X_BWD => {
                let ghost: Vec<f64> = match g.east() {
                    Some(er) => ctx.recv_value(RecvSpec::from(er, TAG_X_BWD))?.1,
                    None => vec![BC; u.ny * u.nz],
                };
                for _ in 0..self.class.inner_reps() {
                    pass_x(u, &ghost, false);
                }
                if let Some(wr) = g.west() {
                    ctx.send_value(wr, TAG_X_BWD, &u.pack_face_x(0))?;
                }
                state.phase = PHASE_Y_FWD;
            }
            PHASE_Y_FWD => {
                let ghost: Vec<f64> = match g.north() {
                    Some(nr) => ctx.recv_value(RecvSpec::from(nr, TAG_Y_FWD))?.1,
                    None => vec![BC; u.nx * u.nz],
                };
                for _ in 0..self.class.inner_reps() {
                    pass_y(u, &ghost, true);
                }
                if let Some(sr) = g.south() {
                    ctx.send_value(sr, TAG_Y_FWD, &u.pack_face_y(u.ny - 1))?;
                }
                state.phase = PHASE_Y_BWD;
            }
            PHASE_Y_BWD => {
                let ghost: Vec<f64> = match g.south() {
                    Some(sr) => ctx.recv_value(RecvSpec::from(sr, TAG_Y_BWD))?.1,
                    None => vec![BC; u.nx * u.nz],
                };
                for _ in 0..self.class.inner_reps() {
                    pass_y(u, &ghost, false);
                }
                if let Some(nr) = g.north() {
                    ctx.send_value(nr, TAG_Y_BWD, &u.pack_face_y(0))?;
                }
                state.phase = PHASE_Z;
            }
            PHASE_Z => {
                for _ in 0..self.class.inner_reps() {
                    pass_z(u);
                }
                state.phase = PHASE_NORM;
            }
            _ => {
                let local = u.sum_sq();
                let tag = TAG_NORM_BASE + (state.iter as u32) * 2;
                let total = allreduce_sum_f64(ctx, tag, local)?;
                state.residual = 0.5 * state.residual + 0.5 * total;
                state.iter += 1;
                state.phase = PHASE_X_FWD;
            }
        }
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &SpState) -> u64 {
        state.u.digest() ^ state.residual.to_bits() ^ state.iter
    }
}

/// One substitution pass along x (`forward`: west → east).
fn pass_x(u: &mut Field3, ghost: &[f64], forward: bool) {
    let (nx, ny, nz) = (u.nx, u.ny, u.nz);
    for k in 0..nz {
        for j in 0..ny {
            let g = ghost[k * ny + j];
            if forward {
                u.set(0, 0, j, k, 0.6 * u.get(0, 0, j, k) + 0.4 * g);
                for i in 1..nx {
                    let v = 0.6 * u.get(0, i, j, k) + 0.4 * u.get(0, i - 1, j, k);
                    u.set(0, i, j, k, v);
                }
            } else {
                u.set(0, nx - 1, j, k, 0.6 * u.get(0, nx - 1, j, k) + 0.4 * g);
                for i in (0..nx - 1).rev() {
                    let v = 0.6 * u.get(0, i, j, k) + 0.4 * u.get(0, i + 1, j, k);
                    u.set(0, i, j, k, v);
                }
            }
        }
    }
}

/// One substitution pass along y (`forward`: north → south).
fn pass_y(u: &mut Field3, ghost: &[f64], forward: bool) {
    let (nx, ny, nz) = (u.nx, u.ny, u.nz);
    for k in 0..nz {
        for i in 0..nx {
            let g = ghost[k * nx + i];
            if forward {
                u.set(0, i, 0, k, 0.6 * u.get(0, i, 0, k) + 0.4 * g);
                for j in 1..ny {
                    let v = 0.6 * u.get(0, i, j, k) + 0.4 * u.get(0, i, j - 1, k);
                    u.set(0, i, j, k, v);
                }
            } else {
                u.set(0, i, ny - 1, k, 0.6 * u.get(0, i, ny - 1, k) + 0.4 * g);
                for j in (0..ny - 1).rev() {
                    let v = 0.6 * u.get(0, i, j, k) + 0.4 * u.get(0, i, j + 1, k);
                    u.set(0, i, j, k, v);
                }
            }
        }
    }
}

/// Local bidirectional pass along the undecomposed z axis.
fn pass_z(u: &mut Field3) {
    let (nx, ny, nz) = (u.nx, u.ny, u.nz);
    for j in 0..ny {
        for i in 0..nx {
            for k in 1..nz {
                let v = 0.6 * u.get(0, i, j, k) + 0.4 * u.get(0, i, j, k - 1);
                u.set(0, i, j, k, v);
            }
            for k in (0..nz - 1).rev() {
                let v = 0.6 * u.get(0, i, j, k) + 0.4 * u.get(0, i, j, k + 1);
                u.set(0, i, j, k, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_wire::{decode_from_slice, encode_to_vec};

    #[test]
    fn state_wire_roundtrip() {
        let app = SpApp { class: Class::Test };
        let state = app.init(3, 4);
        let back: SpState = decode_from_slice(&encode_to_vec(&state)).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn sp_checkpoint_sits_between_lu_and_bt() {
        let lu = crate::LuApp { class: Class::Test }.init(0, 4);
        let sp = SpApp { class: Class::Test }.init(0, 4);
        let bt = crate::BtApp { class: Class::Test }.init(0, 4);
        let lu_size = lu.u.len();
        let sp_size = sp.u.len();
        let bt_size = bt.u.len() + bt.rhs.len();
        assert!(sp_size < bt_size, "SP ({sp_size}) < BT ({bt_size})");
        // SP's cubic grid is at least as heavy as LU's flatter one at
        // the same class, but far below BT's 10 components.
        assert!(sp_size * 5 <= bt_size * 2);
        assert!(lu_size <= bt_size / 4, "LU ({lu_size}) small vs BT ({bt_size})");
    }

    #[test]
    fn passes_preserve_boundedness() {
        let app = SpApp { class: Class::Test };
        let mut s = app.init(0, 1);
        let gx = vec![BC; s.u.ny * s.u.nz];
        let gy = vec![BC; s.u.nx * s.u.nz];
        for _ in 0..200 {
            pass_x(&mut s.u, &gx, true);
            pass_x(&mut s.u, &gx, false);
            pass_y(&mut s.u, &gy, true);
            pass_y(&mut s.u, &gy, false);
            pass_z(&mut s.u);
        }
        assert!(s.u.sum_sq().is_finite());
    }
}
