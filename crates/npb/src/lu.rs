//! LU — the pipelined SSOR wavefront kernel.
//!
//! NPB's LU factorizes over a 2-D process grid and performs, per
//! iteration, a lower-triangular sweep (data flows from the north-west
//! corner to the south-east) and an upper-triangular sweep (the
//! reverse), exchanging one boundary row and one boundary column *per
//! k-plane per sweep*. That is the paper's "high message frequency
//! and relatively small checkpoint size" workload: `2 × nz` small
//! messages per neighbour pair per iteration.
//!
//! One runtime step = one k-plane of one sweep (or the residual
//! all-reduce), so checkpoints and injected failures land at every
//! pipeline stage.

use crate::{Class, Field3, ProcGrid};
use lclog_runtime::collectives::allreduce_sum_f64;
use lclog_runtime::{Fault, RankApp, RankCtx, RecvSpec, StepStatus};
use lclog_wire::impl_wire_struct;

const TAG_NS_LOWER: u32 = 100;
const TAG_EW_LOWER: u32 = 101;
const TAG_NS_UPPER: u32 = 102;
const TAG_EW_UPPER: u32 = 103;
/// Collective tags must be unique per invocation.
const TAG_NORM_BASE: u32 = 1_000_000;

/// Boundary value outside the global domain.
const BC: f64 = 1.0;

const PHASE_LOWER: u64 = 0;
const PHASE_UPPER: u64 = 1;
const PHASE_NORM: u64 = 2;

/// The LU application (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct LuApp {
    /// Problem scale.
    pub class: Class,
}

/// Checkpointable per-rank LU state.
#[derive(Debug, Clone, PartialEq)]
pub struct LuState {
    /// Completed outer iterations.
    pub iter: u64,
    /// Current phase (lower sweep / upper sweep / norm).
    pub phase: u64,
    /// Plane counter within the current sweep.
    pub k: u64,
    /// The local solution block.
    pub u: Field3,
    /// Smoothed residual history.
    pub residual: f64,
}
impl_wire_struct!(LuState {
    iter,
    phase,
    k,
    u,
    residual
});

impl RankApp for LuApp {
    type State = LuState;

    fn init(&self, rank: usize, n: usize) -> LuState {
        let (gnx, gny, gnz, _) = self.class.lu_dims();
        let g = ProcGrid::new(rank, n);
        let nx = ProcGrid::split(gnx, g.px, g.rx);
        let ny = ProcGrid::split(gny, g.py, g.ry);
        let x0 = ProcGrid::offset(gnx, g.px, g.rx);
        let y0 = ProcGrid::offset(gny, g.py, g.ry);
        // Initial condition from global coordinates: digests depend on
        // the global problem, not the decomposition.
        let u = Field3::init(nx, ny, gnz, 1, |_, i, j, k| {
            let (gi, gj) = ((x0 + i) as f64, (y0 + j) as f64);
            1.0 + 0.01 * (gi + 2.0 * gj + 3.0 * k as f64) % 1.7
        });
        LuState {
            iter: 0,
            phase: PHASE_LOWER,
            k: 0,
            u,
            residual: 0.0,
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut LuState) -> Result<StepStatus, Fault> {
        let (_, _, gnz, iters) = self.class.lu_dims();
        if state.iter >= iters {
            return Ok(StepStatus::Done);
        }
        let g = ProcGrid::new(ctx.rank(), ctx.n());
        match state.phase {
            PHASE_LOWER => {
                let k = state.k as usize;
                lower_plane(ctx, &g, &mut state.u, k, self.class.inner_reps())?;
                state.k += 1;
                if state.k as usize == gnz {
                    state.phase = PHASE_UPPER;
                    state.k = 0;
                }
            }
            PHASE_UPPER => {
                let k = gnz - 1 - state.k as usize;
                upper_plane(ctx, &g, &mut state.u, k, self.class.inner_reps())?;
                state.k += 1;
                if state.k as usize == gnz {
                    state.phase = PHASE_NORM;
                    state.k = 0;
                }
            }
            _ => {
                let local = state.u.sum_sq();
                let tag = TAG_NORM_BASE + (state.iter as u32) * 2;
                let total = allreduce_sum_f64(ctx, tag, local)?;
                state.residual = 0.5 * state.residual + 0.5 * total;
                state.iter += 1;
                state.phase = PHASE_LOWER;
            }
        }
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &LuState) -> u64 {
        state.u.digest() ^ state.residual.to_bits() ^ state.iter
    }
}

/// Lower-triangular SSOR relaxation of plane `k`: data flows
/// north-west → south-east.
fn lower_plane(
    ctx: &mut RankCtx<'_>,
    g: &ProcGrid,
    u: &mut Field3,
    k: usize,
    reps: usize,
) -> Result<(), Fault> {
    let (nx, ny) = (u.nx, u.ny);
    let north_ghost: Vec<f64> = match g.north() {
        Some(nr) => ctx.recv_value(RecvSpec::from(nr, TAG_NS_LOWER))?.1,
        None => vec![BC; nx],
    };
    let west_ghost: Vec<f64> = match g.west() {
        Some(wr) => ctx.recv_value(RecvSpec::from(wr, TAG_EW_LOWER))?.1,
        None => vec![BC; ny],
    };
    for _ in 0..reps {
        #[allow(clippy::needless_range_loop)]
        for j in 0..ny {
            for i in 0..nx {
                let w = if i > 0 { u.get(0, i - 1, j, k) } else { west_ghost[j] };
                let nv = if j > 0 { u.get(0, i, j - 1, k) } else { north_ghost[i] };
                let b = if k > 0 { u.get(0, i, j, k - 1) } else { BC };
                let v = 0.4 * u.get(0, i, j, k) + 0.25 * w + 0.25 * nv + 0.1 * b;
                u.set(0, i, j, k, v);
            }
        }
    }
    if let Some(sr) = g.south() {
        ctx.send_value(sr, TAG_NS_LOWER, &u.pack_row(ny - 1, k))?;
    }
    if let Some(er) = g.east() {
        ctx.send_value(er, TAG_EW_LOWER, &u.pack_col(nx - 1, k))?;
    }
    Ok(())
}

/// Upper-triangular SSOR relaxation of plane `k`: data flows
/// south-east → north-west.
fn upper_plane(
    ctx: &mut RankCtx<'_>,
    g: &ProcGrid,
    u: &mut Field3,
    k: usize,
    reps: usize,
) -> Result<(), Fault> {
    let (nx, ny, nz) = (u.nx, u.ny, u.nz);
    let south_ghost: Vec<f64> = match g.south() {
        Some(sr) => ctx.recv_value(RecvSpec::from(sr, TAG_NS_UPPER))?.1,
        None => vec![BC; nx],
    };
    let east_ghost: Vec<f64> = match g.east() {
        Some(er) => ctx.recv_value(RecvSpec::from(er, TAG_EW_UPPER))?.1,
        None => vec![BC; ny],
    };
    for _ in 0..reps {
        for j in (0..ny).rev() {
            for i in (0..nx).rev() {
                let e = if i + 1 < nx { u.get(0, i + 1, j, k) } else { east_ghost[j] };
                let s = if j + 1 < ny { u.get(0, i, j + 1, k) } else { south_ghost[i] };
                let a = if k + 1 < nz { u.get(0, i, j, k + 1) } else { BC };
                let v = 0.4 * u.get(0, i, j, k) + 0.25 * e + 0.25 * s + 0.1 * a;
                u.set(0, i, j, k, v);
            }
        }
    }
    if let Some(nr) = g.north() {
        ctx.send_value(nr, TAG_NS_UPPER, &u.pack_row(0, k))?;
    }
    if let Some(wr) = g.west() {
        ctx.send_value(wr, TAG_EW_UPPER, &u.pack_col(0, k))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_wire::{decode_from_slice, encode_to_vec};

    #[test]
    fn init_uses_global_coordinates() {
        // The union of 4 ranks' blocks must equal the 1-rank block.
        let app = LuApp { class: Class::Test };
        let whole = app.init(0, 1);
        let (gnx, _, _, _) = Class::Test.lu_dims();
        for rank in 0..4 {
            let part = app.init(rank, 4);
            let g = ProcGrid::new(rank, 4);
            let x0 = ProcGrid::offset(gnx, g.px, g.rx);
            let y0 = ProcGrid::offset(Class::Test.lu_dims().1, g.py, g.ry);
            for k in 0..part.u.nz {
                for j in 0..part.u.ny {
                    for i in 0..part.u.nx {
                        assert_eq!(
                            part.u.get(0, i, j, k),
                            whole.u.get(0, x0 + i, y0 + j, k),
                            "rank {rank} cell ({i},{j},{k})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn state_wire_roundtrip() {
        let app = LuApp { class: Class::Test };
        let state = app.init(1, 4);
        let back: LuState = decode_from_slice(&encode_to_vec(&state)).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn digests_differ_between_ranks() {
        let app = LuApp { class: Class::Test };
        let a = app.digest(&app.init(0, 4));
        let b = app.digest(&app.init(1, 4));
        assert_ne!(a, b);
    }
}
