//! # lclog-npb
//!
//! Communication-kernel ports of the three NAS NPB2.3 benchmarks the
//! paper evaluates with — LU, BT and SP — targeting the lclog runtime
//! instead of MPI.
//!
//! These are not the full CFD solvers: they are scaled-down kernels
//! with the *same decomposition, message pattern, message sizes and
//! state-size character* as the originals, performing real `f64`
//! stencil arithmetic so that every run yields a deterministic
//! residual digest (the recovery-correctness check). The paper uses
//! the three codes precisely for their communication character
//! (§IV):
//!
//! * **LU** — pipelined SSOR wavefront sweeps over a 2-D process
//!   grid: *high message frequency, small messages, small
//!   checkpoints* (two boundary exchanges per k-plane per sweep).
//! * **BT** — ADI with 5-component block faces: *low message
//!   frequency, large messages, large checkpoints*.
//! * **SP** — ADI with scalar faces exchanged twice per direction:
//!   *moderate frequency and sizes*.
//!
//! All three add a periodic residual all-reduce (the `ANY_SOURCE`
//! gather of §II.C).
//!
//! ## Example
//!
//! ```
//! use lclog_core::ProtocolKind;
//! use lclog_npb::{run_benchmark, Benchmark, Class};
//! use lclog_runtime::{ClusterConfig, RunConfig};
//!
//! let cfg = ClusterConfig::new(4, RunConfig::new(ProtocolKind::Tdi));
//! let report = run_benchmark(Benchmark::Lu, Class::Test, &cfg).unwrap();
//! assert_eq!(report.digests.len(), 4);
//! ```

#![warn(missing_docs)]

mod bt;
mod cg;
mod field;
mod grid;
mod lu;
mod sp;

pub use bt::BtApp;
pub use cg::CgApp;
pub use field::Field3;
pub use grid::ProcGrid;
pub use lu::LuApp;
pub use sp::SpApp;

use lclog_runtime::{Cluster, ClusterConfig, RunReport};

/// Which NPB kernel to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// SSOR wavefront: many small messages.
    Lu,
    /// Block ADI: few large messages, big state.
    Bt,
    /// Scalar ADI: moderate messages.
    Sp,
    /// Conjugate gradient (extension): collective-dominated.
    Cg,
}

impl Benchmark {
    /// Display name ("LU", "BT", "SP").
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Lu => "LU",
            Benchmark::Bt => "BT",
            Benchmark::Sp => "SP",
            Benchmark::Cg => "CG",
        }
    }

    /// The paper's three benchmarks in its reporting order.
    pub const ALL: [Benchmark; 3] = [Benchmark::Lu, Benchmark::Bt, Benchmark::Sp];

    /// All implemented workloads including the CG extension.
    pub const EXTENDED: [Benchmark; 4] =
        [Benchmark::Lu, Benchmark::Bt, Benchmark::Sp, Benchmark::Cg];
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Problem scale (stands in for NPB's S/W/A classes, sized so that
/// test-suite runs finish in milliseconds and benchmark runs in
/// seconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Class {
    /// Tiny grids, few iterations — unit/integration tests.
    Test,
    /// Benchmark default.
    Small,
    /// Larger sweep point for scaling studies.
    Medium,
}

impl Class {
    /// `(global_nx, global_ny, global_nz, iterations)` for LU-style
    /// grids; BT/SP derive their own dimensions from the same base.
    pub fn lu_dims(self) -> (usize, usize, usize, u64) {
        match self {
            Class::Test => (16, 16, 6, 3),
            Class::Small => (32, 32, 12, 6),
            Class::Medium => (48, 48, 18, 10),
        }
    }

    /// Inner relaxation sweeps per plane/pass — the compute weight of
    /// one step. Scaled with class so benchmark-class runs have the
    /// realistic compute-to-communication ratio of the original codes
    /// (one step of real NPB does far more arithmetic per exchanged
    /// byte than a toy stencil).
    pub fn inner_reps(self) -> usize {
        match self {
            Class::Test => 2,
            Class::Small => 8,
            Class::Medium => 16,
        }
    }

    /// `(global_n, iterations)` for the cubic BT/SP grids.
    pub fn adi_dims(self) -> (usize, u64) {
        match self {
            Class::Test => (12, 3),
            Class::Small => (24, 6),
            Class::Medium => (36, 10),
        }
    }
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Class::Test => "test",
            Class::Small => "small",
            Class::Medium => "medium",
        };
        f.write_str(s)
    }
}

/// Run one benchmark on a configured cluster and return its report.
pub fn run_benchmark(
    bench: Benchmark,
    class: Class,
    cfg: &ClusterConfig,
) -> Result<RunReport, String> {
    match bench {
        Benchmark::Lu => Cluster::run(cfg, LuApp { class }),
        Benchmark::Bt => Cluster::run(cfg, BtApp { class }),
        Benchmark::Sp => Cluster::run(cfg, SpApp { class }),
        Benchmark::Cg => Cluster::run(cfg, CgApp { class }),
    }
}
