//! Dense 3-D scalar fields with multiple components — the
//! checkpointable state of the NPB kernels — plus the face/row packing
//! helpers the boundary exchanges use.

use lclog_wire::{Decode, Encode, Reader, WireError};

/// A `comps`-component field over a local `nx × ny × nz` block,
/// stored as one contiguous `Vec<f64>` (component-major is not used;
/// layout is `[c][k][j][i]` flattened with `i` fastest).
#[derive(Debug, Clone, PartialEq)]
pub struct Field3 {
    /// Local cells along x.
    pub nx: usize,
    /// Local cells along y.
    pub ny: usize,
    /// Local cells along z.
    pub nz: usize,
    /// Components per cell (1 for scalar kernels, 5 for BT).
    pub comps: usize,
    data: Vec<f64>,
}

impl Field3 {
    /// A field initialized by `f(c, i, j, k)` — deterministic initial
    /// conditions derived from *global* coordinates keep digests
    /// independent of the decomposition.
    pub fn init(
        nx: usize,
        ny: usize,
        nz: usize,
        comps: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f64,
    ) -> Self {
        let mut data = Vec::with_capacity(nx * ny * nz * comps);
        for c in 0..comps {
            for k in 0..nz {
                for j in 0..ny {
                    for i in 0..nx {
                        data.push(f(c, i, j, k));
                    }
                }
            }
        }
        Field3 {
            nx,
            ny,
            nz,
            comps,
            data,
        }
    }

    #[inline]
    fn idx(&self, c: usize, i: usize, j: usize, k: usize) -> usize {
        debug_assert!(c < self.comps && i < self.nx && j < self.ny && k < self.nz);
        ((c * self.nz + k) * self.ny + j) * self.nx + i
    }

    /// Read one cell.
    #[inline]
    pub fn get(&self, c: usize, i: usize, j: usize, k: usize) -> f64 {
        self.data[self.idx(c, i, j, k)]
    }

    /// Write one cell.
    #[inline]
    pub fn set(&mut self, c: usize, i: usize, j: usize, k: usize, v: f64) {
        let idx = self.idx(c, i, j, k);
        self.data[idx] = v;
    }

    /// Total `f64` values stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True for degenerate zero-size fields.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Pack row `j` of plane `k` (all components): the LU north/south
    /// exchange payload.
    pub fn pack_row(&self, j: usize, k: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.nx * self.comps);
        for c in 0..self.comps {
            for i in 0..self.nx {
                out.push(self.get(c, i, j, k));
            }
        }
        out
    }

    /// Pack column `i` of plane `k` (all components): the LU east/west
    /// exchange payload.
    pub fn pack_col(&self, i: usize, k: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.ny * self.comps);
        for c in 0..self.comps {
            for j in 0..self.ny {
                out.push(self.get(c, i, j, k));
            }
        }
        out
    }

    /// Pack the `i = index` face (`ny × nz × comps` values): the ADI
    /// x-direction exchange payload.
    pub fn pack_face_x(&self, i: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.ny * self.nz * self.comps);
        for c in 0..self.comps {
            for k in 0..self.nz {
                for j in 0..self.ny {
                    out.push(self.get(c, i, j, k));
                }
            }
        }
        out
    }

    /// Pack the `j = index` face (`nx × nz × comps` values): the ADI
    /// y-direction exchange payload.
    pub fn pack_face_y(&self, j: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.nx * self.nz * self.comps);
        for c in 0..self.comps {
            for k in 0..self.nz {
                for i in 0..self.nx {
                    out.push(self.get(c, i, j, k));
                }
            }
        }
        out
    }

    /// A deterministic digest of the field contents (bit-exact, order
    /// fixed): the recovery-correctness check underneath every
    /// benchmark.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in &self.data {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Sum of squares over all cells (residual building block).
    pub fn sum_sq(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum()
    }
}

impl Encode for Field3 {
    fn encode(&self, buf: &mut Vec<u8>) {
        self.nx.encode(buf);
        self.ny.encode(buf);
        self.nz.encode(buf);
        self.comps.encode(buf);
        self.data.encode(buf);
    }
    fn encoded_len(&self) -> usize {
        self.nx.encoded_len()
            + self.ny.encoded_len()
            + self.nz.encoded_len()
            + self.comps.encoded_len()
            + self.data.encoded_len()
    }
}

impl Decode for Field3 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let nx = usize::decode(reader)?;
        let ny = usize::decode(reader)?;
        let nz = usize::decode(reader)?;
        let comps = usize::decode(reader)?;
        let data = Vec::<f64>::decode(reader)?;
        if data.len() != nx * ny * nz * comps {
            return Err(WireError::LengthOverflow {
                declared: data.len() as u64,
            });
        }
        Ok(Field3 {
            nx,
            ny,
            nz,
            comps,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_wire::{decode_from_slice, encode_to_vec};

    fn sample() -> Field3 {
        Field3::init(3, 2, 2, 2, |c, i, j, k| {
            (c * 1000 + i * 100 + j * 10 + k) as f64
        })
    }

    #[test]
    fn get_set_roundtrip() {
        let mut f = sample();
        assert_eq!(f.get(1, 2, 1, 0), 1210.0);
        f.set(1, 2, 1, 0, -1.5);
        assert_eq!(f.get(1, 2, 1, 0), -1.5);
        assert_eq!(f.len(), 3 * 2 * 2 * 2);
    }

    #[test]
    fn pack_row_and_col_extract_expected_cells() {
        let f = sample();
        let row = f.pack_row(1, 0); // j=1, k=0, comps × nx
        assert_eq!(row, vec![10.0, 110.0, 210.0, 1010.0, 1110.0, 1210.0]);
        let col = f.pack_col(2, 1); // i=2, k=1, comps × ny
        assert_eq!(col, vec![201.0, 211.0, 1201.0, 1211.0]);
    }

    #[test]
    fn pack_faces_have_expected_sizes() {
        let f = sample();
        assert_eq!(f.pack_face_x(0).len(), f.ny * f.nz * f.comps);
        assert_eq!(f.pack_face_y(1).len(), f.nx * f.nz * f.comps);
    }

    #[test]
    fn digest_is_content_sensitive_and_stable() {
        let f = sample();
        let d1 = f.digest();
        assert_eq!(d1, sample().digest());
        let mut g = sample();
        g.set(0, 0, 0, 0, 42.0);
        assert_ne!(d1, g.digest());
    }

    #[test]
    fn wire_roundtrip() {
        let f = sample();
        let back: Field3 = decode_from_slice(&encode_to_vec(&f)).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn wire_rejects_inconsistent_dims() {
        let f = sample();
        let mut bytes = encode_to_vec(&f);
        // Corrupt nx (first varint byte) to break the size invariant.
        bytes[0] = 5;
        assert!(decode_from_slice::<Field3>(&bytes).is_err());
    }
}
