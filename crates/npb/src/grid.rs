//! 2-D process-grid decomposition, as NPB's LU uses (and as our ADI
//! kernels reuse): `n` ranks factored into the most square `px × py`
//! grid, each owning a contiguous block of the global domain.

use lclog_core::Rank;

/// A rank's position in the process grid and its neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProcGrid {
    /// Grid width (ranks along x).
    pub px: usize,
    /// Grid height (ranks along y).
    pub py: usize,
    /// This rank's x coordinate.
    pub rx: usize,
    /// This rank's y coordinate.
    pub ry: usize,
}

impl ProcGrid {
    /// Place `rank` of `n` on the most-square factor grid (NPB LU
    /// requires power-of-two ranks; we accept any `n` by taking the
    /// largest factor ≤ √n).
    pub fn new(rank: Rank, n: usize) -> Self {
        assert!(n > 0);
        assert!(rank < n);
        let (px, py) = Self::factor(n);
        ProcGrid {
            px,
            py,
            rx: rank % px,
            ry: rank / px,
        }
    }

    /// Most-square factorization `(px, py)` with `px * py == n` and
    /// `px <= py`.
    pub fn factor(n: usize) -> (usize, usize) {
        let mut px = (n as f64).sqrt() as usize;
        while px > 1 && !n.is_multiple_of(px) {
            px -= 1;
        }
        (px.max(1), n / px.max(1))
    }

    /// Rank at grid position `(rx, ry)`.
    pub fn rank_at(&self, rx: usize, ry: usize) -> Rank {
        ry * self.px + rx
    }

    /// Western neighbour (smaller x), if any.
    pub fn west(&self) -> Option<Rank> {
        (self.rx > 0).then(|| self.rank_at(self.rx - 1, self.ry))
    }

    /// Eastern neighbour (larger x), if any.
    pub fn east(&self) -> Option<Rank> {
        (self.rx + 1 < self.px).then(|| self.rank_at(self.rx + 1, self.ry))
    }

    /// Northern neighbour (smaller y), if any.
    pub fn north(&self) -> Option<Rank> {
        (self.ry > 0).then(|| self.rank_at(self.rx, self.ry - 1))
    }

    /// Southern neighbour (larger y), if any.
    pub fn south(&self) -> Option<Rank> {
        (self.ry + 1 < self.py).then(|| self.rank_at(self.rx, self.ry + 1))
    }

    /// Split `global` cells along an axis of `parts` ranks: position
    /// `idx` receives a near-equal contiguous share (first ranks take
    /// the remainder).
    pub fn split(global: usize, parts: usize, idx: usize) -> usize {
        global / parts + usize::from(idx < global % parts)
    }

    /// Global offset of position `idx`'s first cell under
    /// [`ProcGrid::split`].
    pub fn offset(global: usize, parts: usize, idx: usize) -> usize {
        (0..idx).map(|i| Self::split(global, parts, i)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_is_most_square() {
        assert_eq!(ProcGrid::factor(1), (1, 1));
        assert_eq!(ProcGrid::factor(4), (2, 2));
        assert_eq!(ProcGrid::factor(8), (2, 4));
        assert_eq!(ProcGrid::factor(16), (4, 4));
        assert_eq!(ProcGrid::factor(32), (4, 8));
        assert_eq!(ProcGrid::factor(7), (1, 7));
        assert_eq!(ProcGrid::factor(12), (3, 4));
    }

    #[test]
    fn neighbours_form_a_consistent_grid() {
        // 2×2 grid: rank layout [0 1; 2 3]
        let g0 = ProcGrid::new(0, 4);
        assert_eq!(g0.east(), Some(1));
        assert_eq!(g0.south(), Some(2));
        assert_eq!(g0.west(), None);
        assert_eq!(g0.north(), None);
        let g3 = ProcGrid::new(3, 4);
        assert_eq!(g3.west(), Some(2));
        assert_eq!(g3.north(), Some(1));
        assert_eq!(g3.east(), None);
        assert_eq!(g3.south(), None);
    }

    #[test]
    fn neighbour_relations_are_symmetric() {
        for n in [1usize, 2, 4, 6, 8, 16, 32] {
            for r in 0..n {
                let g = ProcGrid::new(r, n);
                if let Some(e) = g.east() {
                    assert_eq!(ProcGrid::new(e, n).west(), Some(r));
                }
                if let Some(s) = g.south() {
                    assert_eq!(ProcGrid::new(s, n).north(), Some(r));
                }
            }
        }
    }

    #[test]
    fn split_sums_to_global() {
        for (global, parts) in [(32usize, 4usize), (33, 4), (7, 3), (10, 1)] {
            let total: usize = (0..parts).map(|i| ProcGrid::split(global, parts, i)).sum();
            assert_eq!(total, global);
            // Shares differ by at most one cell.
            let shares: Vec<_> = (0..parts).map(|i| ProcGrid::split(global, parts, i)).collect();
            let min = shares.iter().min().unwrap();
            let max = shares.iter().max().unwrap();
            assert!(max - min <= 1);
        }
    }
}
