//! BT — the block-tridiagonal ADI kernel.
//!
//! NPB's BT solves 5×5 block systems along each coordinate direction
//! per iteration. Its communication character — the reason the paper
//! picked it — is *few but large* messages (whole subdomain faces of
//! 5-component data, one per direction sweep) and a *large checkpoint*
//! (5-component solution plus workspace). One runtime step = one
//! direction sweep (or the residual all-reduce).

use crate::{Class, Field3, ProcGrid};
use lclog_runtime::collectives::allreduce_sum_f64;
use lclog_runtime::{Fault, RankApp, RankCtx, RecvSpec, StepStatus};
use lclog_wire::impl_wire_struct;

const TAG_X: u32 = 200;
const TAG_Y: u32 = 201;
const TAG_NORM_BASE: u32 = 2_000_000;
const BC: f64 = 1.0;
/// BT's block size: 5 flow variables per cell.
const COMPS: usize = 5;

const PHASE_X: u64 = 0;
const PHASE_Y: u64 = 1;
const PHASE_Z: u64 = 2;
const PHASE_NORM: u64 = 3;

/// The BT application (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct BtApp {
    /// Problem scale.
    pub class: Class,
}

/// Checkpointable per-rank BT state: solution plus right-hand-side
/// workspace — deliberately the heaviest checkpoint of the three
/// kernels.
#[derive(Debug, Clone, PartialEq)]
pub struct BtState {
    /// Completed outer iterations.
    pub iter: u64,
    /// Current phase (x / y / z sweep or norm).
    pub phase: u64,
    /// 5-component solution block.
    pub u: Field3,
    /// 5-component workspace (rhs), checkpointed like the original's
    /// `rhs`/`lhs` arrays.
    pub rhs: Field3,
    /// Smoothed residual history.
    pub residual: f64,
}
impl_wire_struct!(BtState {
    iter,
    phase,
    u,
    rhs,
    residual
});

impl RankApp for BtApp {
    type State = BtState;

    fn init(&self, rank: usize, n: usize) -> BtState {
        let (gn, _) = self.class.adi_dims();
        let g = ProcGrid::new(rank, n);
        let nx = ProcGrid::split(gn, g.px, g.rx);
        let ny = ProcGrid::split(gn, g.py, g.ry);
        let x0 = ProcGrid::offset(gn, g.px, g.rx);
        let y0 = ProcGrid::offset(gn, g.py, g.ry);
        let u = Field3::init(nx, ny, gn, COMPS, |c, i, j, k| {
            1.0 + 0.02 * ((c + 1) as f64) * ((x0 + i) as f64 + 1.3 * (y0 + j) as f64 + 0.7 * k as f64) % 2.1
        });
        let rhs = Field3::init(nx, ny, gn, COMPS, |_, _, _, _| 0.0);
        BtState {
            iter: 0,
            phase: PHASE_X,
            u,
            rhs,
            residual: 0.0,
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut BtState) -> Result<StepStatus, Fault> {
        let (_, iters) = self.class.adi_dims();
        if state.iter >= iters {
            return Ok(StepStatus::Done);
        }
        let g = ProcGrid::new(ctx.rank(), ctx.n());
        match state.phase {
            PHASE_X => {
                // Forward line solve along x; data flows west → east as
                // one whole 5-component face.
                let (ny, nz) = (state.u.ny, state.u.nz);
                let ghost: Vec<f64> = match g.west() {
                    Some(wr) => ctx.recv_value(RecvSpec::from(wr, TAG_X))?.1,
                    None => vec![BC; ny * nz * COMPS],
                };
                for _ in 0..self.class.inner_reps() {
                    sweep_x(&mut state.u, &mut state.rhs, &ghost);
                }
                if let Some(er) = g.east() {
                    ctx.send_value(er, TAG_X, &state.u.pack_face_x(state.u.nx - 1))?;
                }
                state.phase = PHASE_Y;
            }
            PHASE_Y => {
                let (nx, nz) = (state.u.nx, state.u.nz);
                let ghost: Vec<f64> = match g.north() {
                    Some(nr) => ctx.recv_value(RecvSpec::from(nr, TAG_Y))?.1,
                    None => vec![BC; nx * nz * COMPS],
                };
                for _ in 0..self.class.inner_reps() {
                    sweep_y(&mut state.u, &mut state.rhs, &ghost);
                }
                if let Some(sr) = g.south() {
                    ctx.send_value(sr, TAG_Y, &state.u.pack_face_y(state.u.ny - 1))?;
                }
                state.phase = PHASE_Z;
            }
            PHASE_Z => {
                // z is undecomposed: a purely local solve.
                for _ in 0..self.class.inner_reps() {
                    sweep_z(&mut state.u, &mut state.rhs);
                }
                state.phase = PHASE_NORM;
            }
            _ => {
                let local = state.u.sum_sq() + 0.25 * state.rhs.sum_sq();
                let tag = TAG_NORM_BASE + (state.iter as u32) * 2;
                let total = allreduce_sum_f64(ctx, tag, local)?;
                state.residual = 0.5 * state.residual + 0.5 * total;
                state.iter += 1;
                state.phase = PHASE_X;
            }
        }
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &BtState) -> u64 {
        state.u.digest() ^ state.rhs.digest().rotate_left(1) ^ state.residual.to_bits()
            ^ state.iter
    }
}

/// Forward relaxation along x, consuming the west ghost face (layout
/// matches [`Field3::pack_face_x`]: `[c][k][j]`).
fn sweep_x(u: &mut Field3, rhs: &mut Field3, ghost: &[f64]) {
    let (nx, ny, nz) = (u.nx, u.ny, u.nz);
    for c in 0..COMPS {
        for k in 0..nz {
            for j in 0..ny {
                let g = ghost[(c * nz + k) * ny + j];
                let first = 0.55 * u.get(c, 0, j, k) + 0.45 * g;
                u.set(c, 0, j, k, first);
                for i in 1..nx {
                    let v = 0.55 * u.get(c, i, j, k) + 0.45 * u.get(c, i - 1, j, k);
                    u.set(c, i, j, k, v);
                }
                for i in 0..nx {
                    let r = 0.5 * rhs.get(c, i, j, k) + 0.5 * u.get(c, i, j, k);
                    rhs.set(c, i, j, k, r);
                }
            }
        }
    }
}

/// Forward relaxation along y, consuming the north ghost face (layout
/// matches [`Field3::pack_face_y`]: `[c][k][i]`).
fn sweep_y(u: &mut Field3, rhs: &mut Field3, ghost: &[f64]) {
    let (nx, ny, nz) = (u.nx, u.ny, u.nz);
    for c in 0..COMPS {
        for k in 0..nz {
            for i in 0..nx {
                let g = ghost[(c * nz + k) * nx + i];
                let first = 0.55 * u.get(c, i, 0, k) + 0.45 * g;
                u.set(c, i, 0, k, first);
                for j in 1..ny {
                    let v = 0.55 * u.get(c, i, j, k) + 0.45 * u.get(c, i, j - 1, k);
                    u.set(c, i, j, k, v);
                }
                for j in 0..ny {
                    let r = 0.5 * rhs.get(c, i, j, k) + 0.5 * u.get(c, i, j, k);
                    rhs.set(c, i, j, k, r);
                }
            }
        }
    }
}

/// Local relaxation along the undecomposed z axis.
fn sweep_z(u: &mut Field3, rhs: &mut Field3) {
    let (nx, ny, nz) = (u.nx, u.ny, u.nz);
    for c in 0..COMPS {
        for j in 0..ny {
            for i in 0..nx {
                for k in 1..nz {
                    let v = 0.55 * u.get(c, i, j, k) + 0.45 * u.get(c, i, j, k - 1);
                    u.set(c, i, j, k, v);
                }
                for k in 0..nz {
                    let r = 0.5 * rhs.get(c, i, j, k) + 0.5 * u.get(c, i, j, k);
                    rhs.set(c, i, j, k, r);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_wire::{decode_from_slice, encode_to_vec};

    #[test]
    fn state_is_heavyweight() {
        let app = BtApp { class: Class::Test };
        let bt = app.init(0, 4);
        let lu = crate::LuApp { class: Class::Test }.init(0, 4);
        // BT's checkpoint (u + rhs, 5 components each) dwarfs LU's.
        assert!(bt.u.len() + bt.rhs.len() > 4 * lu.u.len());
    }

    #[test]
    fn state_wire_roundtrip() {
        let app = BtApp { class: Class::Test };
        let state = app.init(2, 4);
        let back: BtState = decode_from_slice(&encode_to_vec(&state)).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn sweeps_preserve_boundedness() {
        // All update coefficients are convex combinations: values stay
        // within the initial range forever (no NaN/∞ drift over long
        // runs).
        let app = BtApp { class: Class::Test };
        let mut s = app.init(0, 1);
        let ghost_x = vec![BC; s.u.ny * s.u.nz * COMPS];
        let ghost_y = vec![BC; s.u.nx * s.u.nz * COMPS];
        for _ in 0..100 {
            sweep_x(&mut s.u, &mut s.rhs, &ghost_x);
            sweep_y(&mut s.u, &mut s.rhs, &ghost_y);
            sweep_z(&mut s.u, &mut s.rhs);
        }
        assert!(s.u.sum_sq().is_finite());
        assert!(s.rhs.sum_sq().is_finite());
    }
}
