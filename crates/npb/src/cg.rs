//! CG — a conjugate-gradient kernel in the spirit of NPB's CG,
//! included as a workload extension beyond the paper's three.
//!
//! Character: *collective-dominated*. Each iteration performs one
//! sparse matrix–vector product (halo exchange of single boundary
//! values with the 1-D neighbours) and **two** dot-product
//! all-reduces — the `ANY_SOURCE` fan-in pattern of §II.C on the
//! critical path twice per iteration. This stresses exactly the part
//! of dependency tracking the NPB trio exercises least.
//!
//! The operator is an implicit SPD band matrix
//! `A = diag(d) − off · (shift⁻¹ + shift⁺¹)` over the global vector,
//! so the kernel performs a genuine CG solve with a monotonically
//! decreasing residual, bit-reproducible across runs and recoveries.

use crate::{Class, ProcGrid};
use lclog_runtime::collectives::allreduce_sum_f64;
use lclog_runtime::{Fault, RankApp, RankCtx, RecvSpec, StepStatus};
use lclog_wire::impl_wire_struct;

const TAG_HALO_LEFT: u32 = 400; // value flowing to the left neighbour
const TAG_HALO_RIGHT: u32 = 401; // value flowing to the right neighbour
const TAG_DOT_BASE: u32 = 4_000_000;

const DIAG: f64 = 2.2;
const OFF: f64 = 0.9;

const PHASE_MATVEC: u64 = 0;
const PHASE_UPDATE: u64 = 1;

/// The CG application (see module docs).
#[derive(Debug, Clone, Copy)]
pub struct CgApp {
    /// Problem scale.
    pub class: Class,
}

impl CgApp {
    /// `(global_unknowns, iterations)` per class.
    pub fn dims(class: Class) -> (usize, u64) {
        match class {
            Class::Test => (96, 6),
            Class::Small => (512, 12),
            Class::Medium => (2048, 20),
        }
    }
}

/// Checkpointable per-rank CG state: the local slices of the CG
/// vectors plus the scalar recurrence.
#[derive(Debug, Clone, PartialEq)]
pub struct CgState {
    /// Completed iterations.
    pub iter: u64,
    /// Current phase.
    pub phase: u64,
    /// Solution slice.
    pub x: Vec<f64>,
    /// Residual slice.
    pub r: Vec<f64>,
    /// Search-direction slice.
    pub p: Vec<f64>,
    /// Workspace `q = A p` slice.
    pub q: Vec<f64>,
    /// ρ = r·r from the previous update phase.
    pub rho: f64,
    /// p·q from the matvec phase.
    pub pq: f64,
}
impl_wire_struct!(CgState {
    iter,
    phase,
    x,
    r,
    p,
    q,
    rho,
    pq
});

impl RankApp for CgApp {
    type State = CgState;

    fn init(&self, rank: usize, n: usize) -> CgState {
        let (global, _) = Self::dims(self.class);
        let local = ProcGrid::split(global, n, rank);
        let offset = ProcGrid::offset(global, n, rank);
        // b = normalized oscillating right-hand side; x0 = 0 so r = b,
        // p = r.
        let b: Vec<f64> = (0..local)
            .map(|i| 1.0 + 0.5 * (((offset + i) % 7) as f64 - 3.0) / 3.0)
            .collect();
        let rho: f64 = b.iter().map(|v| v * v).sum();
        CgState {
            iter: 0,
            phase: PHASE_MATVEC,
            x: vec![0.0; local],
            r: b.clone(),
            p: b,
            q: vec![0.0; local],
            // Local ρ only; globalized lazily in the first update.
            rho,
            pq: 0.0,
        }
    }

    fn step(&self, ctx: &mut RankCtx<'_>, state: &mut CgState) -> Result<StepStatus, Fault> {
        let (_, iters) = Self::dims(self.class);
        if state.iter >= iters {
            return Ok(StepStatus::Done);
        }
        let rank = ctx.rank();
        let n = ctx.n();
        match state.phase {
            PHASE_MATVEC => {
                // Halo exchange: my first element goes left, my last
                // goes right; boundaries use zero Dirichlet values.
                let local = state.p.len();
                if rank > 0 {
                    ctx.send_value(rank - 1, TAG_HALO_LEFT, &state.p[0])?;
                }
                if rank + 1 < n {
                    ctx.send_value(rank + 1, TAG_HALO_RIGHT, &state.p[local - 1])?;
                }
                let right_halo: f64 = if rank + 1 < n {
                    ctx.recv_value(RecvSpec::from(rank + 1, TAG_HALO_LEFT))?.1
                } else {
                    0.0
                };
                let left_halo: f64 = if rank > 0 {
                    ctx.recv_value(RecvSpec::from(rank - 1, TAG_HALO_RIGHT))?.1
                } else {
                    0.0
                };
                // q = A p over the local slice.
                let mut pq_local = 0.0;
                for i in 0..local {
                    let left = if i > 0 { state.p[i - 1] } else { left_halo };
                    let right = if i + 1 < local { state.p[i + 1] } else { right_halo };
                    state.q[i] = DIAG * state.p[i] - OFF * (left + right);
                    pq_local += state.p[i] * state.q[i];
                }
                let tag = TAG_DOT_BASE + (state.iter as u32) * 4;
                state.pq = allreduce_sum_f64(ctx, tag, pq_local)?;
                state.phase = PHASE_UPDATE;
            }
            _ => {
                // First update globalizes the initial local ρ.
                if state.iter == 0 {
                    let tag = TAG_DOT_BASE + (state.iter as u32) * 4 + 2;
                    state.rho = allreduce_sum_f64(ctx, tag, state.rho)?;
                }
                let alpha = state.rho / state.pq;
                let mut rho_local = 0.0;
                for i in 0..state.x.len() {
                    state.x[i] += alpha * state.p[i];
                    state.r[i] -= alpha * state.q[i];
                    rho_local += state.r[i] * state.r[i];
                }
                let tag = TAG_DOT_BASE + (state.iter as u32) * 4 + 10;
                let rho_next = allreduce_sum_f64(ctx, tag, rho_local)?;
                let beta = rho_next / state.rho;
                for i in 0..state.p.len() {
                    state.p[i] = state.r[i] + beta * state.p[i];
                }
                state.rho = rho_next;
                state.iter += 1;
                state.phase = PHASE_MATVEC;
            }
        }
        Ok(StepStatus::Continue)
    }

    fn digest(&self, state: &CgState) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in state.x.iter().chain(&state.r) {
            h ^= v.to_bits();
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ state.rho.to_bits() ^ state.iter
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lclog_wire::{decode_from_slice, encode_to_vec};

    #[test]
    fn state_wire_roundtrip() {
        let app = CgApp { class: Class::Test };
        let state = app.init(1, 4);
        let back: CgState = decode_from_slice(&encode_to_vec(&state)).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn slices_partition_the_global_vector() {
        let (global, _) = CgApp::dims(Class::Test);
        let app = CgApp { class: Class::Test };
        let total: usize = (0..5).map(|r| app.init(r, 5).x.len()).sum();
        assert_eq!(total, global);
    }

    #[test]
    fn single_rank_cg_reduces_residual() {
        // Drive the kernel single-rank through the Cluster so the
        // collectives degenerate correctly, and verify CG converges.
        use lclog_core::ProtocolKind;
        use lclog_runtime::{Cluster, ClusterConfig, RunConfig};
        let app = CgApp { class: Class::Test };
        let initial_rho: f64 = {
            let s = app.init(0, 1);
            s.r.iter().map(|v| v * v).sum()
        };
        let cfg = ClusterConfig::new(1, RunConfig::new(ProtocolKind::Tdi));
        let report = Cluster::run(&cfg, app).unwrap();
        assert_eq!(report.digests.len(), 1);
        // Convergence is checked indirectly: rerun manually.
        let mut state = app.init(0, 1);
        // Sequential reference CG (no comms, n = 1 semantics).
        for _ in 0..CgApp::dims(Class::Test).1 {
            let local = state.p.len();
            let mut pq = 0.0;
            for i in 0..local {
                let left = if i > 0 { state.p[i - 1] } else { 0.0 };
                let right = if i + 1 < local { state.p[i + 1] } else { 0.0 };
                state.q[i] = DIAG * state.p[i] - OFF * (left + right);
                pq += state.p[i] * state.q[i];
            }
            let alpha = state.rho / pq;
            let mut rho_next = 0.0;
            for i in 0..local {
                state.x[i] += alpha * state.p[i];
                state.r[i] -= alpha * state.q[i];
                rho_next += state.r[i] * state.r[i];
            }
            let beta = rho_next / state.rho;
            for i in 0..local {
                state.p[i] = state.r[i] + beta * state.p[i];
            }
            state.rho = rho_next;
        }
        assert!(
            state.rho < initial_rho * 1e-2,
            "CG must reduce the residual: {initial_rho} -> {}",
            state.rho
        );
    }
}
