use std::fmt;

/// Errors produced while decoding wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before the value was fully decoded.
    UnexpectedEof {
        /// Bytes needed to continue decoding.
        needed: usize,
        /// Bytes remaining in the input.
        remaining: usize,
    },
    /// The input contained bytes after the decoded value.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// A varint used more than 10 bytes (would overflow `u64`).
    VarintOverflow,
    /// An enum discriminant or boolean byte was out of range.
    InvalidTag {
        /// Name of the type being decoded.
        type_name: &'static str,
        /// The offending tag value.
        tag: u64,
    },
    /// A `String` field did not contain valid UTF-8.
    InvalidUtf8,
    /// A declared sequence length was implausibly large for the
    /// remaining input (guards against corrupt length prefixes
    /// triggering huge allocations).
    LengthOverflow {
        /// The declared element count.
        declared: u64,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remaining"
            ),
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after decoded value")
            }
            WireError::VarintOverflow => write!(f, "varint exceeds u64 range"),
            WireError::InvalidTag { type_name, tag } => {
                write!(f, "invalid tag {tag} while decoding {type_name}")
            }
            WireError::InvalidUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::LengthOverflow { declared } => {
                write!(f, "declared length {declared} exceeds remaining input")
            }
        }
    }
}

impl std::error::Error for WireError {}
