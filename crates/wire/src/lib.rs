//! # lclog-wire
//!
//! A minimal, self-contained binary codec used by every layer of the
//! lclog stack (protocol piggybacks, checkpoint images, fabric
//! envelopes).
//!
//! The format is deliberately simple and stable:
//!
//! * fixed-width little-endian encodings for primitive integers and
//!   floats,
//! * LEB128 varints for lengths and counters (message indices grow
//!   unboundedly but are usually small),
//! * length-prefixed sequences for `Vec<T>`, `String`, and byte
//!   buffers,
//! * a one-byte presence tag for `Option<T>`.
//!
//! There is no reflection and no external format dependency; the
//! [`impl_wire_struct!`] and [`impl_wire_enum!`] macros generate
//! field-by-field implementations for the handful of protocol structs
//! that need them.
//!
//! ## Example
//!
//! ```
//! use lclog_wire::{encode_to_vec, decode_from_slice};
//!
//! let xs: Vec<u32> = vec![1, 2, 3];
//! let bytes = encode_to_vec(&xs);
//! let back: Vec<u32> = decode_from_slice(&bytes).unwrap();
//! assert_eq!(xs, back);
//! ```

#![warn(missing_docs)]

pub mod crc32;
mod error;
mod macros;
mod reader;
mod traits;
pub mod varint;

pub use crc32::{crc32, crc32_concat, Crc32};
pub use error::WireError;
pub use reader::Reader;
pub use traits::{Decode, Encode};

use bytes::{Bytes, BytesMut};

/// Encode a value into a fresh byte vector.
pub fn encode_to_vec<T: Encode + ?Sized>(value: &T) -> Vec<u8> {
    let mut buf = Vec::with_capacity(value.encoded_len());
    value.encode(&mut buf);
    buf
}

/// Append a value's encoding to a reusable [`BytesMut`] frame builder.
///
/// This is the single-pass framing primitive: reserve once, encode
/// header and payload into the same allocation, then
/// [`BytesMut::freeze`] and slice out zero-copy windows.
pub fn encode_into<T: Encode + ?Sized>(value: &T, buf: &mut BytesMut) {
    buf.reserve(value.encoded_len());
    value.encode(buf.as_mut_vec());
}

/// Encode a value into a frozen [`Bytes`] buffer sized exactly to its
/// encoding (one allocation, no copy on freeze).
pub fn encode_to_bytes<T: Encode + ?Sized>(value: &T) -> Bytes {
    let mut buf = BytesMut::with_capacity(value.encoded_len());
    value.encode(buf.as_mut_vec());
    buf.freeze()
}

/// Decode a value from a refcounted buffer, requiring the buffer to be
/// fully consumed. Byte-buffer fields (`Bytes`) decode as **zero-copy
/// windows** into `buf` instead of copies.
pub fn decode_from_bytes<T: Decode>(buf: &Bytes) -> Result<T, WireError> {
    let mut reader = Reader::from_bytes(buf);
    let value = T::decode(&mut reader)?;
    reader.finish()?;
    Ok(value)
}

/// Decode a value from the front of a refcounted buffer, returning the
/// value and the number of bytes consumed. Like [`decode_from_bytes`],
/// nested `Bytes` fields alias `buf` rather than copying.
pub fn decode_prefix_bytes<T: Decode>(buf: &Bytes) -> Result<(T, usize), WireError> {
    let mut reader = Reader::from_bytes(buf);
    let value = T::decode(&mut reader)?;
    let consumed = reader.position();
    Ok((value, consumed))
}

/// Decode a value from a byte slice, requiring the slice to be fully
/// consumed.
pub fn decode_from_slice<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut reader = Reader::new(bytes);
    let value = T::decode(&mut reader)?;
    reader.finish()?;
    Ok(value)
}

/// Decode a value from the front of a byte slice, returning the value
/// and the number of bytes consumed.
pub fn decode_prefix<T: Decode>(bytes: &[u8]) -> Result<(T, usize), WireError> {
    let mut reader = Reader::new(bytes);
    let value = T::decode(&mut reader)?;
    let consumed = reader.position();
    Ok((value, consumed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_vec() {
        let xs: Vec<u64> = vec![0, 1, u64::MAX, 42];
        let bytes = encode_to_vec(&xs);
        let back: Vec<u64> = decode_from_slice(&bytes).unwrap();
        assert_eq!(xs, back);
    }

    #[test]
    fn decode_prefix_reports_consumed() {
        let mut buf = encode_to_vec(&7u32);
        buf.extend_from_slice(&[0xAA, 0xBB]);
        let (v, used): (u32, usize) = decode_prefix(&buf).unwrap();
        assert_eq!(v, 7);
        assert_eq!(used, 4);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = encode_to_vec(&7u32);
        buf.push(0);
        let err = decode_from_slice::<u32>(&buf).unwrap_err();
        assert!(matches!(err, WireError::TrailingBytes { .. }));
    }
}
