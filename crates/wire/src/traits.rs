use crate::{varint, Reader, WireError};
use bytes::Bytes;
use std::collections::BTreeMap;

/// Types that can be serialized into the lclog wire format.
pub trait Encode {
    /// Append this value's encoding to `buf`.
    fn encode(&self, buf: &mut Vec<u8>);

    /// Exact number of bytes [`Encode::encode`] will append.
    fn encoded_len(&self) -> usize;
}

/// Types that can be deserialized from the lclog wire format.
pub trait Decode: Sized {
    /// Decode a value from `reader`, consuming exactly its encoding.
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError>;
}

macro_rules! impl_fixed_int {
    ($($ty:ty => $n:expr),* $(,)?) => {$(
        impl Encode for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                buf.extend_from_slice(&self.to_le_bytes());
            }
            fn encoded_len(&self) -> usize { $n }
        }
        impl Decode for $ty {
            fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(<$ty>::from_le_bytes(reader.take_array::<$n>()?))
            }
        }
    )*};
}

impl_fixed_int! {
    u8 => 1, u16 => 2, u32 => 4, u64 => 8,
    i8 => 1, i16 => 2, i32 => 4, i64 => 8,
}

impl Encode for f64 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn encoded_len(&self) -> usize {
        8
    }
}

impl Decode for f64 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_le_bytes(reader.take_array::<8>()?))
    }
}

impl Encode for f32 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Decode for f32 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(f32::from_le_bytes(reader.take_array::<4>()?))
    }
}

impl Encode for bool {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.push(*self as u8);
    }
    fn encoded_len(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        match reader.take_byte()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag {
                type_name: "bool",
                tag: tag as u64,
            }),
        }
    }
}

/// `usize` is encoded as a varint so the format is
/// architecture-independent.
impl Encode for usize {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, *self as u64);
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(*self as u64)
    }
}

impl Decode for usize {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let v = varint::read_u64(reader)?;
        usize::try_from(v).map_err(|_| WireError::LengthOverflow { declared: v })
    }
}

fn decode_len(reader: &mut Reader<'_>, min_elem_size: usize) -> Result<usize, WireError> {
    let declared = varint::read_u64(reader)?;
    let len = usize::try_from(declared).map_err(|_| WireError::LengthOverflow { declared })?;
    // A sequence of `len` elements needs at least `len * min_elem_size`
    // bytes of input; reject corrupt prefixes before allocating.
    if min_elem_size > 0 && len > reader.remaining() / min_elem_size {
        return Err(WireError::LengthOverflow { declared });
    }
    Ok(len)
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, self.len() as u64);
        for item in self {
            item.encode(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64) + self.iter().map(Encode::encoded_len).sum::<usize>()
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = decode_len(reader, 1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(reader)?);
        }
        Ok(out)
    }
}

impl Encode for String {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, self.len() as u64);
        buf.extend_from_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64) + self.len()
    }
}

impl Decode for String {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = decode_len(reader, 1)?;
        let bytes = reader.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

impl Encode for str {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, self.len() as u64);
        buf.extend_from_slice(self.as_bytes());
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64) + self.len()
    }
}

/// Payload buffers travel as length-prefixed raw bytes.
impl Encode for Bytes {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, self.len() as u64);
        buf.extend_from_slice(self);
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64) + self.len()
    }
}

impl Decode for Bytes {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = decode_len(reader, 1)?;
        // Zero-copy when the reader is backed by a `Bytes` (see
        // `Reader::take_bytes`); copies otherwise.
        reader.take_bytes(len)
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            None => buf.push(0),
            Some(v) => {
                buf.push(1);
                v.encode(buf);
            }
        }
    }
    fn encoded_len(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::encoded_len)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        match reader.take_byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(reader)?)),
            tag => Err(WireError::InvalidTag {
                type_name: "Option",
                tag: tag as u64,
            }),
        }
    }
}

impl Encode for u128 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn encoded_len(&self) -> usize {
        16
    }
}

impl Decode for u128 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(u128::from_le_bytes(reader.take_array::<16>()?))
    }
}

impl Encode for i128 {
    fn encode(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.to_le_bytes());
    }
    fn encoded_len(&self) -> usize {
        16
    }
}

impl Decode for i128 {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(i128::from_le_bytes(reader.take_array::<16>()?))
    }
}

impl Encode for char {
    fn encode(&self, buf: &mut Vec<u8>) {
        (*self as u32).encode(buf);
    }
    fn encoded_len(&self) -> usize {
        4
    }
}

impl Decode for char {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let raw = u32::decode(reader)?;
        char::from_u32(raw).ok_or(WireError::InvalidTag {
            type_name: "char",
            tag: raw as u64,
        })
    }
}

impl<T: Encode, const N: usize> Encode for [T; N] {
    fn encode(&self, buf: &mut Vec<u8>) {
        for item in self {
            item.encode(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        self.iter().map(Encode::encoded_len).sum()
    }
}

impl<T: Decode, const N: usize> Decode for [T; N] {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        // Build via Vec to avoid unsafe MaybeUninit gymnastics; N is
        // small in protocol structs.
        let mut items = Vec::with_capacity(N);
        for _ in 0..N {
            items.push(T::decode(reader)?);
        }
        match items.try_into() {
            Ok(array) => Ok(array),
            // We pushed exactly N items above.
            Err(_) => unreachable!("vector length is N by construction"),
        }
    }
}

/// Maps are encoded as sorted `(key, value)` sequences, so encodings
/// are canonical (deterministic piggyback sizes).
impl<K: Encode, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, buf: &mut Vec<u8>) {
        varint::write_u64(buf, self.len() as u64);
        for (k, v) in self {
            k.encode(buf);
            v.encode(buf);
        }
    }
    fn encoded_len(&self) -> usize {
        varint::len_u64(self.len() as u64)
            + self
                .iter()
                .map(|(k, v)| k.encoded_len() + v.encoded_len())
                .sum::<usize>()
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = decode_len(reader, 1)?;
        let mut out = BTreeMap::new();
        for _ in 0..len {
            let k = K::decode(reader)?;
            let v = V::decode(reader)?;
            out.insert(k, v);
        }
        Ok(out)
    }
}

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, buf: &mut Vec<u8>) {
                $(self.$idx.encode(buf);)+
            }
            fn encoded_len(&self) -> usize {
                0 $(+ self.$idx.encoded_len())+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(reader)?,)+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl Encode for () {
    fn encode(&self, _buf: &mut Vec<u8>) {}
    fn encoded_len(&self) -> usize {
        0
    }
}

impl Decode for () {
    fn decode(_reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

impl<T: Encode> Encode for Box<T> {
    fn encode(&self, buf: &mut Vec<u8>) {
        (**self).encode(buf);
    }
    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }
}

impl<T: Decode> Decode for Box<T> {
    fn decode(reader: &mut Reader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::decode(reader)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode_from_slice, encode_to_vec};
    use proptest::prelude::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = encode_to_vec(&value);
        assert_eq!(bytes.len(), value.encoded_len(), "encoded_len mismatch");
        let back: T = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn roundtrip_primitives() {
        roundtrip(0u8);
        roundtrip(u16::MAX);
        roundtrip(-5i32);
        roundtrip(i64::MIN);
        roundtrip(std::f64::consts::PI);
        roundtrip(true);
        roundtrip(false);
        roundtrip(usize::MAX);
        roundtrip(());
    }

    #[test]
    fn roundtrip_compound() {
        roundtrip(Some(42u32));
        roundtrip(Option::<u32>::None);
        roundtrip(vec![vec![1u8], vec![], vec![2, 3]]);
        roundtrip("hello".to_string());
        roundtrip(String::new());
        roundtrip((1u8, 2u16, 3u32, 4u64, "x".to_string()));
        roundtrip(Bytes::from_static(b"payload"));
        roundtrip(Box::new(7i16));
    }

    #[test]
    fn invalid_bool_tag() {
        let err = decode_from_slice::<bool>(&[2]).unwrap_err();
        assert!(matches!(err, WireError::InvalidTag { type_name: "bool", tag: 2 }));
    }

    #[test]
    fn invalid_option_tag() {
        let err = decode_from_slice::<Option<u8>>(&[9]).unwrap_err();
        assert!(matches!(err, WireError::InvalidTag { type_name: "Option", tag: 9 }));
    }

    #[test]
    fn corrupt_length_prefix_rejected_without_allocation() {
        // Declares u64::MAX elements but provides none.
        let mut buf = Vec::new();
        crate::varint::write_u64(&mut buf, u64::MAX);
        let err = decode_from_slice::<Vec<u8>>(&buf).unwrap_err();
        assert!(matches!(err, WireError::LengthOverflow { .. }));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut buf = Vec::new();
        crate::varint::write_u64(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let err = decode_from_slice::<String>(&buf).unwrap_err();
        assert_eq!(err, WireError::InvalidUtf8);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_u64(v in any::<u64>()) {
            roundtrip(v);
        }

        #[test]
        fn prop_roundtrip_vec_u32(v in proptest::collection::vec(any::<u32>(), 0..200)) {
            roundtrip(v);
        }

        #[test]
        fn prop_roundtrip_string(s in ".*") {
            roundtrip(s);
        }

        #[test]
        fn prop_roundtrip_nested(v in proptest::collection::vec(
            (any::<u16>(), proptest::option::of(any::<i64>())), 0..50))
        {
            roundtrip(v);
        }

        #[test]
        fn prop_decode_arbitrary_bytes_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            // Decoding random garbage must return an error or a value,
            // never panic or over-allocate.
            let _ = decode_from_slice::<Vec<(u32, String)>>(&bytes);
            let _ = decode_from_slice::<Option<Vec<u64>>>(&bytes);
            let _ = decode_from_slice::<String>(&bytes);
        }

        #[test]
        fn prop_usize_varint_roundtrip(v in any::<usize>()) {
            roundtrip(v);
        }

        #[test]
        fn prop_roundtrip_btreemap(m in proptest::collection::btree_map(any::<u32>(), any::<i64>(), 0..40)) {
            roundtrip(m);
        }

        #[test]
        fn prop_roundtrip_u128(v in any::<u128>()) {
            roundtrip(v);
        }

        #[test]
        fn prop_roundtrip_char(c in any::<char>()) {
            roundtrip(c);
        }
    }

    #[test]
    fn roundtrip_wide_types() {
        roundtrip(u128::MAX);
        roundtrip(i128::MIN);
        roundtrip('é');
        roundtrip([1u32, 2, 3]);
        roundtrip([0u8; 0]);
        let mut m = std::collections::BTreeMap::new();
        m.insert("a".to_string(), vec![1u8]);
        m.insert("b".to_string(), vec![]);
        roundtrip(m);
    }

    #[test]
    fn invalid_char_rejected() {
        // 0xD800 is a lone surrogate: not a char.
        let bytes = 0xD800u32.to_le_bytes();
        let err = decode_from_slice::<char>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::InvalidTag { type_name: "char", .. }));
    }

    #[test]
    fn btreemap_encoding_is_canonical() {
        let mut a = std::collections::BTreeMap::new();
        a.insert(2u8, 20u8);
        a.insert(1u8, 10u8);
        let mut b = std::collections::BTreeMap::new();
        b.insert(1u8, 10u8);
        b.insert(2u8, 20u8);
        assert_eq!(encode_to_vec(&a), encode_to_vec(&b));
    }
}
