//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) used for
//! envelope integrity checks in the reliability layer and for
//! checkpoint trailers in stable storage.
//!
//! Table-driven, byte-at-a-time — plenty fast for the message sizes
//! the simulation moves, with zero dependencies.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::crc32;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let clean = vec![0xA5u8; 64];
        let reference = crc32(&clean);
        for bit in 0..clean.len() * 8 {
            let mut corrupt = clean.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&corrupt), reference, "bit {bit} undetected");
        }
    }
}
