//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) used for
//! envelope integrity checks in the reliability layer and for
//! checkpoint trailers in stable storage.
//!
//! Table-driven, byte-at-a-time — plenty fast for the message sizes
//! the simulation moves, with zero dependencies.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

/// CRC-32 of the logical concatenation `head ++ body`, computed
/// without materializing the concatenation. The data plane uses this
/// to checksum two-segment frames (fresh header + zero-copy payload)
/// as if they were one contiguous buffer.
pub fn crc32_concat(head: &[u8], body: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(head);
    h.update(body);
    h.finalize()
}

/// Incremental CRC-32 hasher: feed any number of slices with
/// [`Crc32::update`]; [`Crc32::finalize`] yields the same value
/// [`crc32`] would produce over their concatenation.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: !0u32 }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final checksum over everything absorbed so far.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::{crc32, crc32_concat, Crc32};

    #[test]
    fn concat_matches_contiguous() {
        let data = b"the frame header and then the payload bytes";
        for split in 0..=data.len() {
            assert_eq!(
                crc32_concat(&data[..split], &data[split..]),
                crc32(data),
                "split at {split}"
            );
        }
        let mut h = Crc32::new();
        h.update(b"the frame ");
        h.update(b"");
        h.update(b"header and then the payload bytes");
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let clean = vec![0xA5u8; 64];
        let reference = crc32(&clean);
        for bit in 0..clean.len() * 8 {
            let mut corrupt = clean.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&corrupt), reference, "bit {bit} undetected");
        }
    }
}
