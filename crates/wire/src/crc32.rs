//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) used for
//! envelope integrity checks in the reliability layer and for
//! checkpoint trailers in stable storage.
//!
//! Slicing-by-8: eight const-built tables, eight bytes folded per
//! iteration (~0.4 ns/byte vs ~2.5 for the classic byte-at-a-time
//! loop — the difference is most of a 256-byte send's budget on the
//! kernel hot path). Zero dependencies; identical checksums.

const POLY: u32 = 0xEDB8_8320;

const fn build_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    // t[k][b] advances the CRC of byte `b` through k additional zero
    // bytes, so eight table lookups absorb eight input bytes at once.
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
}

static TABLES: [[u32; 256]; 8] = build_tables();

/// CRC-32 checksum of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finalize()
}

/// CRC-32 of the logical concatenation `head ++ body`, computed
/// without materializing the concatenation. The data plane uses this
/// to checksum two-segment frames (fresh header + zero-copy payload)
/// as if they were one contiguous buffer.
pub fn crc32_concat(head: &[u8], body: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(head);
    h.update(body);
    h.finalize()
}

/// Incremental CRC-32 hasher: feed any number of slices with
/// [`Crc32::update`]; [`Crc32::finalize`] yields the same value
/// [`crc32`] would produce over their concatenation.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: !0u32 }
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][((lo >> 24) & 0xFF) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][((hi >> 24) & 0xFF) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Final checksum over everything absorbed so far.
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::{crc32, crc32_concat, Crc32};

    #[test]
    fn concat_matches_contiguous() {
        let data = b"the frame header and then the payload bytes";
        for split in 0..=data.len() {
            assert_eq!(
                crc32_concat(&data[..split], &data[split..]),
                crc32(data),
                "split at {split}"
            );
        }
        let mut h = Crc32::new();
        h.update(b"the frame ");
        h.update(b"");
        h.update(b"header and then the payload bytes");
        assert_eq!(h.finalize(), crc32(data));
    }

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let clean = vec![0xA5u8; 64];
        let reference = crc32(&clean);
        for bit in 0..clean.len() * 8 {
            let mut corrupt = clean.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&corrupt), reference, "bit {bit} undetected");
        }
    }
}
