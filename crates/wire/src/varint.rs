//! LEB128 variable-length integer encoding.
//!
//! Message indices and dependency counters grow without bound but are
//! small in practice, so varints keep piggyback bytes proportional to
//! the *useful* information — which matters when comparing protocol
//! piggyback sizes (Fig. 6 of the paper counts identifiers; byte
//! accounting uses this encoding).

use crate::{Reader, WireError};

/// Maximum encoded size of a `u64` varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Append the LEB128 encoding of `value` to `buf`.
pub fn write_u64(buf: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7F) as u8;
        value >>= 7;
        if value == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Number of bytes `write_u64` would append for `value`.
pub fn len_u64(value: u64) -> usize {
    // 1 byte per 7 significant bits, minimum 1.
    let bits = 64 - value.leading_zeros() as usize;
    bits.div_ceil(7).max(1)
}

/// Read a LEB128-encoded `u64` from `reader`.
pub fn read_u64(reader: &mut Reader<'_>) -> Result<u64, WireError> {
    let mut value: u64 = 0;
    let mut shift: u32 = 0;
    for _ in 0..MAX_VARINT_LEN {
        let byte = reader.take_byte()?;
        let low = (byte & 0x7F) as u64;
        if shift == 63 && low > 1 {
            return Err(WireError::VarintOverflow);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
    Err(WireError::VarintOverflow)
}

/// ZigZag-encode a signed value so small magnitudes stay small.
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        assert_eq!(buf.len(), len_u64(v), "len mismatch for {v}");
        let mut r = Reader::new(&buf);
        let out = read_u64(&mut r).unwrap();
        r.finish().unwrap();
        out
    }

    #[test]
    fn roundtrip_edges() {
        for v in [
            0u64,
            1,
            127,
            128,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn lengths_match_expectation() {
        assert_eq!(len_u64(0), 1);
        assert_eq!(len_u64(127), 1);
        assert_eq!(len_u64(128), 2);
        assert_eq!(len_u64(u64::MAX), 10);
    }

    #[test]
    fn overflow_detected() {
        // 11 continuation bytes cannot be a valid u64 varint.
        let bytes = [0xFFu8; 11];
        let mut r = Reader::new(&bytes);
        assert_eq!(read_u64(&mut r).unwrap_err(), WireError::VarintOverflow);
    }

    #[test]
    fn tenth_byte_overflow_detected() {
        // 9 continuation bytes then a final byte with more than the
        // single remaining bit set.
        let mut bytes = vec![0x80u8; 9];
        bytes.push(0x02);
        let mut r = Reader::new(&bytes);
        assert_eq!(read_u64(&mut r).unwrap_err(), WireError::VarintOverflow);
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -123456, 123456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes encode small.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
