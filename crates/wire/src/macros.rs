/// Implement [`Encode`](crate::Encode) and [`Decode`](crate::Decode)
/// for a struct by listing its fields in wire order.
///
/// ```
/// use lclog_wire::{impl_wire_struct, encode_to_vec, decode_from_slice};
///
/// #[derive(Debug, Clone, PartialEq)]
/// struct Point { x: u32, y: u32 }
/// impl_wire_struct!(Point { x, y });
///
/// let p = Point { x: 1, y: 2 };
/// let back: Point = decode_from_slice(&encode_to_vec(&p)).unwrap();
/// assert_eq!(p, back);
/// ```
#[macro_export]
macro_rules! impl_wire_struct {
    ($ty:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::Encode for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                $($crate::Encode::encode(&self.$field, buf);)+
            }
            fn encoded_len(&self) -> usize {
                0 $(+ $crate::Encode::encoded_len(&self.$field))+
            }
        }
        impl $crate::Decode for $ty {
            fn decode(reader: &mut $crate::Reader<'_>) -> Result<Self, $crate::WireError> {
                Ok($ty {
                    $($field: $crate::Decode::decode(reader)?,)+
                })
            }
        }
    };
}

/// Implement [`Encode`](crate::Encode) and [`Decode`](crate::Decode)
/// for a field-less-or-tuple-variant enum with a one-byte
/// discriminant.
///
/// ```
/// use lclog_wire::{impl_wire_enum, encode_to_vec, decode_from_slice};
///
/// #[derive(Debug, Clone, PartialEq)]
/// enum Op { Nop, Put(u32, u32), Tag(String) }
/// impl_wire_enum!(Op { 0 => Nop, 1 => Put(a, b), 2 => Tag(s) });
///
/// let op = Op::Put(1, 2);
/// let back: Op = decode_from_slice(&encode_to_vec(&op)).unwrap();
/// assert_eq!(op, back);
/// ```
#[macro_export]
macro_rules! impl_wire_enum {
    ($ty:ident { $($tag:literal => $variant:ident $(($($field:ident),+))?),+ $(,)? }) => {
        impl $crate::Encode for $ty {
            fn encode(&self, buf: &mut Vec<u8>) {
                match self {
                    $(
                        $ty::$variant $(($($field),+))? => {
                            buf.push($tag);
                            $($($crate::Encode::encode($field, buf);)+)?
                        }
                    )+
                }
            }
            fn encoded_len(&self) -> usize {
                match self {
                    $(
                        $ty::$variant $(($($field),+))? => {
                            1 $($(+ $crate::Encode::encoded_len($field))+)?
                        }
                    )+
                }
            }
        }
        impl $crate::Decode for $ty {
            fn decode(reader: &mut $crate::Reader<'_>) -> Result<Self, $crate::WireError> {
                match reader.take_byte()? {
                    $(
                        $tag => Ok($ty::$variant $(($($crate::Decode::decode(reader).map(|$field| $field)?),+))?),
                    )+
                    tag => Err($crate::WireError::InvalidTag {
                        type_name: stringify!($ty),
                        tag: tag as u64,
                    }),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::{decode_from_slice, encode_to_vec, WireError};

    #[derive(Debug, Clone, PartialEq)]
    struct Header {
        src: u32,
        dst: u32,
        seq: u64,
        label: String,
    }
    impl_wire_struct!(Header { src, dst, seq, label });

    #[derive(Debug, Clone, PartialEq)]
    enum Control {
        Ping,
        Rollback(Vec<u64>),
        Response(u32, u64),
    }
    impl_wire_enum!(Control {
        0 => Ping,
        1 => Rollback(v),
        2 => Response(rank, idx),
    });

    #[test]
    fn struct_roundtrip() {
        let h = Header {
            src: 1,
            dst: 2,
            seq: 300,
            label: "lu".into(),
        };
        let bytes = encode_to_vec(&h);
        assert_eq!(bytes.len(), crate::Encode::encoded_len(&h));
        let back: Header = decode_from_slice(&bytes).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn enum_roundtrip_all_variants() {
        for c in [
            Control::Ping,
            Control::Rollback(vec![1, 2, 3]),
            Control::Response(7, 99),
        ] {
            let bytes = encode_to_vec(&c);
            assert_eq!(bytes.len(), crate::Encode::encoded_len(&c));
            let back: Control = decode_from_slice(&bytes).unwrap();
            assert_eq!(back, c);
        }
    }

    #[test]
    fn enum_bad_tag() {
        let err = decode_from_slice::<Control>(&[77]).unwrap_err();
        assert!(matches!(
            err,
            WireError::InvalidTag {
                type_name: "Control",
                tag: 77
            }
        ));
    }
}
