use crate::WireError;

/// A cursor over a byte slice used during decoding.
///
/// All reads are bounds-checked and return [`WireError::UnexpectedEof`]
/// rather than panicking, so a corrupt or truncated buffer can never
/// crash the protocol stack.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Create a reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Number of bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Take a single byte.
    pub fn take_byte(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Take a fixed-size array of bytes.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Require that the whole input has been consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_advances_position() {
        let data = [1u8, 2, 3, 4];
        let mut r = Reader::new(&data);
        assert_eq!(r.take(2).unwrap(), &[1, 2]);
        assert_eq!(r.position(), 2);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.take_byte().unwrap(), 3);
        assert!(r.finish().is_err());
        assert_eq!(r.take_byte().unwrap(), 4);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn take_past_end_errors() {
        let data = [1u8];
        let mut r = Reader::new(&data);
        let err = r.take(2).unwrap_err();
        assert_eq!(
            err,
            WireError::UnexpectedEof {
                needed: 2,
                remaining: 1
            }
        );
        // Position unchanged after a failed read.
        assert_eq!(r.position(), 0);
    }

    #[test]
    fn take_array_roundtrip() {
        let data = [9u8, 8, 7];
        let mut r = Reader::new(&data);
        let arr: [u8; 3] = r.take_array().unwrap();
        assert_eq!(arr, [9, 8, 7]);
    }
}
