use crate::WireError;
use bytes::Bytes;

/// A cursor over a byte slice used during decoding.
///
/// All reads are bounds-checked and return [`WireError::UnexpectedEof`]
/// rather than panicking, so a corrupt or truncated buffer can never
/// crash the protocol stack.
///
/// A reader built with [`Reader::from_bytes`] additionally remembers
/// the refcounted buffer it is cursoring over, which lets
/// [`Reader::take_bytes`] hand out **zero-copy windows** into that
/// buffer instead of copying. A plain [`Reader::new`] reader still
/// works everywhere; `take_bytes` then falls back to copying.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    backing: Option<&'a Bytes>,
}

impl<'a> Reader<'a> {
    /// Create a reader positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0, backing: None }
    }

    /// Create a reader over a refcounted buffer; `take_bytes` will
    /// slice it without copying.
    pub fn from_bytes(buf: &'a Bytes) -> Self {
        Reader { bytes: buf.as_ref(), pos: 0, backing: Some(buf) }
    }

    /// Number of bytes consumed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Take the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Take the next `n` bytes as an owned [`Bytes`]. When the reader
    /// was built with [`Reader::from_bytes`], the result is a zero-copy
    /// window sharing the input's allocation; otherwise it copies.
    pub fn take_bytes(&mut self, n: usize) -> Result<Bytes, WireError> {
        match self.backing {
            Some(buf) => {
                if self.remaining() < n {
                    return Err(WireError::UnexpectedEof {
                        needed: n,
                        remaining: self.remaining(),
                    });
                }
                let out = buf.slice(self.pos..self.pos + n);
                self.pos += n;
                Ok(out)
            }
            None => Ok(Bytes::copy_from_slice(self.take(n)?)),
        }
    }

    /// Take a single byte.
    pub fn take_byte(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Take a fixed-size array of bytes.
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let slice = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Require that the whole input has been consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(WireError::TrailingBytes {
                remaining: self.remaining(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_advances_position() {
        let data = [1u8, 2, 3, 4];
        let mut r = Reader::new(&data);
        assert_eq!(r.take(2).unwrap(), &[1, 2]);
        assert_eq!(r.position(), 2);
        assert_eq!(r.remaining(), 2);
        assert_eq!(r.take_byte().unwrap(), 3);
        assert!(r.finish().is_err());
        assert_eq!(r.take_byte().unwrap(), 4);
        assert!(r.finish().is_ok());
    }

    #[test]
    fn take_past_end_errors() {
        let data = [1u8];
        let mut r = Reader::new(&data);
        let err = r.take(2).unwrap_err();
        assert_eq!(
            err,
            WireError::UnexpectedEof {
                needed: 2,
                remaining: 1
            }
        );
        // Position unchanged after a failed read.
        assert_eq!(r.position(), 0);
    }

    #[test]
    fn take_array_roundtrip() {
        let data = [9u8, 8, 7];
        let mut r = Reader::new(&data);
        let arr: [u8; 3] = r.take_array().unwrap();
        assert_eq!(arr, [9, 8, 7]);
    }

    #[test]
    fn take_bytes_aliases_backed_reader() {
        let buf = Bytes::from(vec![1u8, 2, 3, 4, 5]);
        let mut r = Reader::from_bytes(&buf);
        assert_eq!(r.take_byte().unwrap(), 1);
        let win = r.take_bytes(3).unwrap();
        assert_eq!(win, &[2u8, 3, 4][..]);
        assert!(win.shares_allocation(&buf), "backed take_bytes must not copy");
        assert_eq!(r.remaining(), 1);
        // Over-read errors without advancing.
        assert!(r.take_bytes(2).is_err());
        assert_eq!(r.remaining(), 1);
    }

    #[test]
    fn take_bytes_copies_without_backing() {
        let data = [7u8, 8, 9];
        let mut r = Reader::new(&data);
        let win = r.take_bytes(2).unwrap();
        assert_eq!(win, &[7u8, 8][..]);
        assert!(r.finish().is_err());
    }
}
