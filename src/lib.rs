//! # lclog — lightweight causal message logging
//!
//! A full reproduction of *"A Lightweight Causal Message Logging
//! Protocol to Lower Fault Tolerance Overhead"* (Yang, CLUSTER 2016)
//! as a Rust workspace: the paper's TDI protocol, the TAG and TEL
//! baselines it compares against, an MPI-like rollback-recovery
//! runtime over a simulated cluster fabric, and NPB2.3-style LU/BT/SP
//! workloads.
//!
//! This facade crate re-exports the public API of every workspace
//! member. Start with [`Cluster::run`] and the [`RankApp`] trait:
//!
//! ```
//! use lclog::prelude::*;
//!
//! // Run the LU kernel on 4 ranks under TDI with one injected crash.
//! let cfg = ClusterConfig::new(4, RunConfig::new(ProtocolKind::Tdi))
//!     .with_failures(FailurePlan::kill_at(1, 9));
//! let report = lclog::npb::run_benchmark(
//!     lclog::npb::Benchmark::Lu,
//!     lclog::npb::Class::Test,
//!     &cfg,
//! )
//! .unwrap();
//! assert_eq!(report.kills, 1);
//! ```

#![warn(missing_docs)]

pub use lclog_core as core;
pub use lclog_npb as npb;
pub use lclog_runtime as runtime;
pub use lclog_simnet as simnet;
pub use lclog_stable as stable;
pub use lclog_wire as wire;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use lclog_core::{
        DeliveryVerdict, Determinant, LoggingProtocol, ProtocolKind, Rank, TrackingStats,
    };
    pub use lclog_runtime::{
        collectives, CheckpointPolicy, Cluster, ClusterConfig, CommMode, DetectorConfig,
        DetectorReport, Event, EventKind, FailurePlan, Fault, MembershipView, RankApp, RankCtx,
        RecvSpec, RemoteConfig, ReplicatorConfig, ReplicatorStats, RunConfig, RunReport,
        StepStatus, StorageKind,
    };
    pub use lclog_simnet::{ChaosConfig, NetConfig, Partition, SimNet, StorageChaos};
    pub use lclog_stable::{
        FaultyRemote, Manifest, ManifestEntry, MemRemote, RemoteStore, MANIFEST_KEY,
    };
    pub use lclog_wire::{decode_from_slice, encode_to_vec, impl_wire_struct};
}

pub use prelude::{Cluster, ClusterConfig, FailurePlan, ProtocolKind, RankApp, RunConfig};
